package gmdj

import (
	"fmt"
	"strconv"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/obs"
	"skalla/internal/relation"
)

// RowSource is a scannable detail relation: evaluation never needs random
// access to detail rows, only sequential scans, so sites can serve
// partitions from memory (relation.Relation via SourceOf) or from disk
// (internal/store.Table) behind the same interface with bounded memory.
type RowSource interface {
	// Schema describes the rows.
	Schema() relation.Schema
	// Scan streams every row through fn; an fn error aborts the scan.
	Scan(fn func(relation.Tuple) error) error
	// Len returns the row count.
	Len() int
}

// scanCounted streams src through fn like src.Scan, charging the rows visited
// to the engine rows-scanned counter — one counter add per scan, never per
// row, so the accounting stays off the hot path.
func scanCounted(src RowSource, fn func(relation.Tuple) error) error {
	rows := 0
	err := src.Scan(func(t relation.Tuple) error {
		rows++
		return fn(t)
	})
	obs.EngineRowsScanned.Add(int64(rows))
	return err
}

// scanCountedWorker is scanCounted for one shard of a parallel evaluation: the
// visited rows are additionally charged to the per-worker counter, so skewed
// shard assignments show up in /metrics.
func scanCountedWorker(src RowSource, worker int, fn func(relation.Tuple) error) error {
	rows := 0
	err := src.Scan(func(t relation.Tuple) error {
		rows++
		return fn(t)
	})
	obs.EngineRowsScanned.Add(int64(rows))
	obs.EngineWorkerRows.With(strconv.Itoa(worker)).Add(int64(rows))
	return err
}

// scanShardCounted dispatches between the sequential (worker < 0) and
// per-worker-labeled counted scans.
func scanShardCounted(src RowSource, worker int, fn func(relation.Tuple) error) error {
	if worker < 0 {
		return scanCounted(src, fn)
	}
	return scanCountedWorker(src, worker, fn)
}

// SourceOf adapts a materialized relation to a RowSource.
func SourceOf(r *relation.Relation) RowSource { return relSource{r} }

type relSource struct{ r *relation.Relation }

func (s relSource) Schema() relation.Schema { return s.r.Schema }
func (s relSource) Len() int                { return s.r.Len() }
func (s relSource) Scan(fn func(relation.Tuple) error) error {
	for _, t := range s.r.Tuples {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// Split implements SplittableSource: contiguous row ranges of near-equal
// size, so the concatenation of the shard scans is exactly the full scan.
func (s relSource) Split(n int) []RowSource {
	rows := s.r.Len()
	if n > rows {
		n = rows
	}
	if n <= 1 {
		return nil
	}
	out := make([]RowSource, n)
	for w := 0; w < n; w++ {
		lo, hi := rows*w/n, rows*(w+1)/n
		out[w] = relSource{&relation.Relation{Schema: s.r.Schema, Tuples: s.r.Tuples[lo:hi]}}
	}
	return out
}

// DataSource resolves detail relation names to scannable sources.
type DataSource interface {
	SchemaSource
	DetailSource(name string) (RowSource, error)
}

// Data is a map-based DataSource over materialized relations.
//
//skallavet:allow stringkey -- catalog keyed by relation name: resolved once per query, not per tuple
type Data map[string]*relation.Relation

// DetailSchema implements SchemaSource.
func (d Data) DetailSchema(name string) (relation.Schema, error) {
	r, err := d.DetailRelation(name)
	if err != nil {
		return nil, err
	}
	return r.Schema, nil
}

// DetailRelation returns the named materialized relation.
func (d Data) DetailRelation(name string) (*relation.Relation, error) {
	r, ok := d[name]
	if !ok {
		return nil, fmt.Errorf("gmdj: unknown detail relation %q", name)
	}
	return r, nil
}

// DetailSource implements DataSource.
func (d Data) DetailSource(name string) (RowSource, error) {
	r, err := d.DetailRelation(name)
	if err != nil {
		return nil, err
	}
	return SourceOf(r), nil
}

// EvalCentral evaluates a complex GMDJ expression against fully materialized
// data, exactly per Definition 1: each base tuple's aggregates are computed
// over RNG(b, R, θ). It is the centralized reference implementation — the
// role Daytona plays in the paper — and the correctness oracle for the
// distributed evaluator. Equality-linked conditions are evaluated with a
// hash-grouping fast path; set useHash=false to force the literal
// nested-loop semantics (used to cross-check the fast path).
func EvalCentral(q Query, src DataSource, useHash bool) (*relation.Relation, error) {
	x, err := EvalCentralX(q, src, useHash)
	if err != nil {
		return nil, err
	}
	return x.Project(FinalColumns(q))
}

// EvalCentralX is EvalCentral without the final projection: it returns the
// full base-result structure X (base columns, physical sub-aggregate columns
// and derived AVG columns). The distributed engine's local evaluation rounds
// (Prop. 2 / Cor. 1) ship this form so the coordinator can still merge
// physical columns by key.
func EvalCentralX(q Query, src DataSource, useHash bool) (*relation.Relation, error) {
	if err := q.Validate(src); err != nil {
		return nil, err
	}
	return evalPrefixX(q, src, len(q.Ops), useHash, 1)
}

// EvalPrefixX evaluates the base query and the first upTo operators,
// returning the intermediate base-result structure X_upTo. The query must
// already be validated.
func EvalPrefixX(q Query, src DataSource, upTo int, useHash bool) (*relation.Relation, error) {
	return EvalPrefixXWorkers(q, src, upTo, useHash, 1)
}

// EvalPrefixXWorkers is EvalPrefixX with worker-parallel scans (see
// EvalBaseWorkers / AccumulateOperatorWorkers for the workers contract).
func EvalPrefixXWorkers(q Query, src DataSource, upTo int, useHash bool, workers int) (*relation.Relation, error) {
	if upTo < 0 || upTo > len(q.Ops) {
		return nil, fmt.Errorf("gmdj: prefix %d out of range (query has %d operators)", upTo, len(q.Ops))
	}
	return evalPrefixX(q, src, upTo, useHash, workers)
}

func evalPrefixX(q Query, src DataSource, upTo int, useHash bool, workers int) (*relation.Relation, error) {
	baseRel, err := src.DetailSource(q.Base.Detail)
	if err != nil {
		return nil, err
	}
	x, err := EvalBaseWorkers(q.Base, baseRel, workers)
	if err != nil {
		return nil, err
	}
	for i := 0; i < upTo; i++ {
		op := q.Ops[i]
		detail, err := src.DetailSource(op.Detail)
		if err != nil {
			return nil, err
		}
		x, err = ApplyOperatorWorkers(x, op, detail, useHash, workers)
		if err != nil {
			return nil, fmt.Errorf("gmdj: MD%d: %w", i+1, err)
		}
	}
	return x, nil
}

// EvalBase computes the base-values relation B_0 from a detail source: an
// optional filter followed by a distinct projection, generalized to grouping
// sets when bq.GroupingSets is non-empty (the union over sets of NULL-padded
// distinct projections; see BaseQuery). The detail rows are streamed once;
// memory is bounded by the number of distinct base values.
func EvalBase(bq BaseQuery, detail RowSource) (*relation.Relation, error) {
	return EvalBaseWorkers(bq, detail, 1)
}

// EvalBaseWorkers is EvalBase with the detail scan sharded across workers
// (0 = auto, 1 = sequential; parallelism needs a SplittableSource). The
// result is identical to the sequential evaluation including row order:
// shards are contiguous, each worker records its shard's first occurrences in
// order, and the merge dedupes in shard order — so global first-occurrence
// order is preserved exactly.
func EvalBaseWorkers(bq BaseQuery, detail RowSource, workers int) (*relation.Relation, error) {
	p, err := compileBase(bq, detail)
	if err != nil {
		return nil, err
	}
	if shards := splitSource(detail, resolveWorkers(workers, detail.Len())); shards != nil {
		return evalBaseParallel(p, shards)
	}
	out := relation.New(p.schema)
	seen := relation.NewKeySet(64)
	if err := p.scanShard(detail, -1, seen, &out.Tuples); err != nil {
		return nil, err
	}
	return out, nil
}

// baseProg is a compiled base query: the bound filter, projection indexes and
// grouping-set masks. All fields are read-only after compileBase, so shards
// can share one program.
type baseProg struct {
	where   expr.Expr
	idx     []int
	allCols []int
	masks   [][]bool
	schema  relation.Schema
}

func compileBase(bq BaseQuery, detail RowSource) (*baseProg, error) {
	schema := detail.Schema()
	p := &baseProg{}
	if bq.Where != nil {
		var err error
		p.where, err = expr.Bind(bq.Where, nil, schema)
		if err != nil {
			return nil, err
		}
	}
	idx, err := schema.Indexes(bq.Cols)
	if err != nil {
		return nil, err
	}
	p.idx = idx
	p.schema = schema.Project(idx)
	p.allCols = make([]int, len(bq.Cols))
	for i := range p.allCols {
		p.allCols[i] = i
	}

	// Precompute the grouping-set masks; the plain distinct projection is
	// the single full set.
	sets := bq.GroupingSets
	if len(sets) == 0 {
		sets = [][]string{bq.Cols}
	}
	p.masks = make([][]bool, len(sets))
	for si, set := range sets {
		mask := make([]bool, len(bq.Cols))
		for _, col := range set {
			for i, c := range bq.Cols {
				if c == col {
					mask[i] = true
				}
			}
		}
		p.masks[si] = mask
	}
	return p, nil
}

// scanShard streams one shard of the detail source, interning each surviving
// projection into seen and appending fresh ones to out in first-occurrence
// order. worker < 0 is the sequential (unlabeled) scan.
func (p *baseProg) scanShard(src RowSource, worker int, seen *relation.KeySet, out *[]relation.Tuple) error {
	scratch := make(relation.Tuple, len(p.idx))
	return scanShardCounted(src, worker, func(t relation.Tuple) error {
		if p.where != nil {
			ok, err := expr.EvalCond(p.where, nil, t)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		for _, mask := range p.masks {
			for i, j := range p.idx {
				if mask[i] {
					scratch[i] = t[j]
				} else {
					scratch[i] = relation.Null
				}
			}
			// Add interns the projection only for fresh keys; duplicates cost
			// one hash probe and no allocation.
			interned, fresh := seen.Add(scratch, p.allCols)
			if fresh {
				*out = append(*out, interned)
			}
		}
		return nil
	})
}

// OperatorAccum holds the per-base-row physical accumulators of one MD
// operator evaluation over one detail relation (or one partition of it), one
// slice per grouping variable, plus the Touched flags: Touched[i] is the
// |RNG(b_i, R, θ_1 ∨ … ∨ θ_m)| > 0 test of Proposition 1, used for
// distribution-independent group reduction.
type OperatorAccum struct {
	Layouts []*agg.Layout
	Accs    [][]relation.Tuple // [variable][baseRow]
	Touched []bool
}

// AccumulateOperator evaluates one MD operator's grouping variables over the
// detail rows, per Definition 1, producing physical sub-aggregate slices for
// every base row. The detail source is scanned once per grouping variable;
// conditions with equality links use a hash-grouping fast path over the base
// relation, grouping-set conditions use the 2^n-probe cube path, and
// everything else falls back to the literal nested loop (detail-outer, so
// disk-backed sources are still scanned sequentially).
func AccumulateOperator(x *relation.Relation, op Operator, detail RowSource, useHash bool) (*OperatorAccum, error) {
	return AccumulateOperatorWorkers(x, op, detail, useHash, 1)
}

// AccumulateOperatorWorkers is AccumulateOperator with the detail scans
// sharded across workers (0 = auto, 1 = sequential; parallelism needs a
// SplittableSource). Each worker accumulates private per-base-row partials
// over its shard; the partials are merged with the same super-aggregate
// decomposition that merges per-site sub-aggregates — Theorem 1 applies
// unchanged, a worker shard is just a finer horizontal partition — in worker
// order, so results match the sequential evaluation (byte-identically for
// integer-valued aggregates; see DESIGN.md §11 for the float caveat).
func AccumulateOperatorWorkers(x *relation.Relation, op Operator, detail RowSource, useHash bool, workers int) (*OperatorAccum, error) {
	states, err := buildVarStates(x, op, detail.Schema(), useHash)
	if err != nil {
		return nil, err
	}
	out := &OperatorAccum{
		Layouts: make([]*agg.Layout, len(op.Vars)),
		Accs:    make([][]relation.Tuple, len(op.Vars)),
		Touched: make([]bool, x.Len()),
	}
	for vi, st := range states {
		out.Layouts[vi] = st.layout
		accs := make([]relation.Tuple, x.Len())
		for i := range accs {
			accs[i] = st.layout.Identity()
		}
		out.Accs[vi] = accs
	}
	if shards := splitSource(detail, resolveWorkers(workers, detail.Len())); shards != nil {
		if err := accumulateParallel(x, states, out, shards); err != nil {
			return nil, err
		}
		return out, nil
	}
	hits := make([]uint32, x.Len())
	for vi, st := range states {
		if err := st.scan(x, detail, out.Accs[vi], hits, -1); err != nil {
			return nil, err
		}
	}
	for i, h := range hits {
		out.Touched[i] = h > 0
	}
	return out, nil
}

// varState is one grouping variable compiled against the base and detail
// schemas: the aggregate layout, the bound condition, and (when usable) the
// hash-grouping index over the base relation. All fields are read-only after
// buildVarStates — expression evaluation is a stateless tree walk and
// KeyIndex.Lookup never mutates — so concurrent shard scans share one state.
type varState struct {
	layout  *agg.Layout
	cond    expr.Expr
	hashIdx *relation.KeyIndex
	probe   []int
	// rollup marks the grouping-set fast path: probe holds the detail
	// column positions of the dimensions, and every detail row is probed
	// with all 2^n NULL paddings (each base row matches at most one —
	// the one mirroring its own NULL pattern).
	rollup bool
}

func buildVarStates(x *relation.Relation, op Operator, detailSchema relation.Schema, useHash bool) ([]*varState, error) {
	states := make([]*varState, len(op.Vars))
	for vi, v := range op.Vars {
		layout, err := agg.NewLayout(v.Aggs, detailSchema)
		if err != nil {
			return nil, err
		}
		cond, err := expr.Bind(v.Cond, x.Schema, detailSchema)
		if err != nil {
			return nil, err
		}
		st := &varState{layout: layout, cond: cond}
		if useHash {
			links := expr.EqualityLinks(cond)
			rollup := false
			if len(links) == 0 {
				// Grouping-set conditions have their equalities under ORs;
				// recognize the rollup shape and use the 2^n-probe cube path.
				if rl, ok := expr.RollupLinks(cond); ok && len(rl) <= 16 {
					links, rollup = rl, true
				}
			}
			if len(links) > 0 {
				baseCols := make([]string, len(links))
				st.probe = make([]int, len(links))
				usable := true
				for li, l := range links {
					baseCols[li] = l.Base
					di := detailSchema.Index(l.Detail)
					if di < 0 {
						usable = false
						break
					}
					st.probe[li] = di
				}
				if usable {
					if idx, err := relation.BuildKeyIndex(x, baseCols); err == nil {
						st.hashIdx = idx
						st.rollup = rollup
					}
				}
			}
		}
		states[vi] = st
	}
	return states, nil
}

// scan accumulates this grouping variable over one detail shard: accs[i]
// receives base row i's physical partials, hits[i] counts its accumulations
// (feeding both the Prop. 1 Touched flags and the skew-aware merge planner).
// worker < 0 is the sequential (unlabeled) scan.
func (st *varState) scan(x *relation.Relation, detail RowSource, accs []relation.Tuple, hits []uint32, worker int) error {
	return scanShardCounted(detail, worker, st.feeder(x, accs, hits))
}

// feeder returns this grouping variable's per-detail-row accumulation step
// over accs/hits, decoupled from the scan that drives it: scan drives one
// feeder per pass, while the fan-in path (AccumulateOperatorsFanIn) drives
// many registered feeders — across grouping variables and across whole
// operator jobs — from a single shared detail scan. Each closure carries its
// own probe scratch, so concurrent shard feeders never share mutable state.
func (st *varState) feeder(x *relation.Relation, accs []relation.Tuple, hits []uint32) func(relation.Tuple) error {
	if st.hashIdx != nil && st.rollup {
		n := len(st.probe)
		padded := make(relation.Tuple, n)
		paddedCols := make([]int, n)
		for i := range paddedCols {
			paddedCols[i] = i
		}
		return func(dr relation.Tuple) error {
			// A NULL detail value pads identically whether its bit is
			// set or not; restrict masks to non-NULL dimensions so no
			// probe (and hence no base row) repeats for this detail row.
			nullBits := 0
			for i, di := range st.probe {
				if dr[di].IsNull() {
					nullBits |= 1 << i
				}
			}
			for mask := 0; mask < 1<<n; mask++ {
				if mask&nullBits != 0 {
					continue
				}
				for i, di := range st.probe {
					if mask&(1<<i) != 0 {
						padded[i] = dr[di]
					} else {
						padded[i] = relation.Null
					}
				}
				for _, bi := range st.hashIdx.Lookup(padded, paddedCols) {
					ok, err := expr.EvalCond(st.cond, x.Tuples[bi], dr)
					if err != nil {
						return err
					}
					if ok {
						if err := st.layout.Accumulate(accs[bi], dr); err != nil {
							return err
						}
						hits[bi]++
					}
				}
			}
			return nil
		}
	}
	if st.hashIdx != nil {
		return func(dr relation.Tuple) error {
			for _, bi := range st.hashIdx.Lookup(dr, st.probe) {
				ok, err := expr.EvalCond(st.cond, x.Tuples[bi], dr)
				if err != nil {
					return err
				}
				if ok {
					if err := st.layout.Accumulate(accs[bi], dr); err != nil {
						return err
					}
					hits[bi]++
				}
			}
			return nil
		}
	}
	return func(dr relation.Tuple) error {
		for bi, br := range x.Tuples {
			ok, err := expr.EvalCond(st.cond, br, dr)
			if err != nil {
				return err
			}
			if ok {
				if err := st.layout.Accumulate(accs[bi], dr); err != nil {
					return err
				}
				hits[bi]++
			}
		}
		return nil
	}
}

// ExtendedSchema returns the base schema extended with the operator's
// physical and derived columns, in layout order.
func (a *OperatorAccum) ExtendedSchema(base relation.Schema) (relation.Schema, error) {
	out := base.Clone()
	var err error
	for _, l := range a.Layouts {
		if out, err = out.Concat(l.PhysSchema()); err != nil {
			return nil, err
		}
		if out, err = out.Concat(l.DerivedSchema()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ExtendRow returns base row i's values followed by its physical and derived
// aggregate values.
func (a *OperatorAccum) ExtendRow(baseRow relation.Tuple, i int) relation.Tuple {
	row := make(relation.Tuple, 0, len(baseRow)+a.physWidth())
	row = append(row, baseRow...)
	for vi, l := range a.Layouts {
		row = append(row, a.Accs[vi][i]...)
		row = append(row, l.ComputeDerived(a.Accs[vi][i])...)
	}
	return row
}

// PhysRow returns only base row i's physical aggregate values across all
// variables (the sub-aggregate payload shipped in H_i rows).
func (a *OperatorAccum) PhysRow(i int) relation.Tuple {
	var row relation.Tuple
	for vi := range a.Layouts {
		row = append(row, a.Accs[vi][i]...)
	}
	return row
}

// PhysSchema returns the concatenated physical schema across all variables.
func (a *OperatorAccum) PhysSchema() (relation.Schema, error) {
	var out relation.Schema
	var err error
	for _, l := range a.Layouts {
		if out, err = out.Concat(l.PhysSchema()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (a *OperatorAccum) physWidth() int {
	n := 0
	for _, l := range a.Layouts {
		n += len(l.Phys) + len(l.Derived)
	}
	return n
}

// ApplyOperator evaluates one MD operator: for every tuple of the incoming
// base-values relation x it computes, per grouping variable, the aggregates
// over the detail rows satisfying the variable's condition, and returns x
// extended with the new physical and derived columns. x is not modified.
func ApplyOperator(x *relation.Relation, op Operator, detail RowSource, useHash bool) (*relation.Relation, error) {
	return ApplyOperatorWorkers(x, op, detail, useHash, 1)
}

// ApplyOperatorWorkers is ApplyOperator with worker-parallel detail scans
// (see AccumulateOperatorWorkers for the workers contract).
func ApplyOperatorWorkers(x *relation.Relation, op Operator, detail RowSource, useHash bool, workers int) (*relation.Relation, error) {
	acc, err := AccumulateOperatorWorkers(x, op, detail, useHash, workers)
	if err != nil {
		return nil, err
	}
	outSchema, err := acc.ExtendedSchema(x.Schema)
	if err != nil {
		return nil, err
	}
	out := relation.New(outSchema)
	out.Tuples = make([]relation.Tuple, x.Len())
	for i, br := range x.Tuples {
		out.Tuples[i] = acc.ExtendRow(br, i)
	}
	return out, nil
}
