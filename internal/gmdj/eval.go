package gmdj

import (
	"fmt"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/obs"
	"skalla/internal/relation"
)

// RowSource is a scannable detail relation: evaluation never needs random
// access to detail rows, only sequential scans, so sites can serve
// partitions from memory (relation.Relation via SourceOf) or from disk
// (internal/store.Table) behind the same interface with bounded memory.
type RowSource interface {
	// Schema describes the rows.
	Schema() relation.Schema
	// Scan streams every row through fn; an fn error aborts the scan.
	Scan(fn func(relation.Tuple) error) error
	// Len returns the row count.
	Len() int
}

// scanCounted streams src through fn like src.Scan, charging the rows visited
// to the engine rows-scanned counter — one counter add per scan, never per
// row, so the accounting stays off the hot path.
func scanCounted(src RowSource, fn func(relation.Tuple) error) error {
	rows := 0
	err := src.Scan(func(t relation.Tuple) error {
		rows++
		return fn(t)
	})
	obs.EngineRowsScanned.Add(int64(rows))
	return err
}

// SourceOf adapts a materialized relation to a RowSource.
func SourceOf(r *relation.Relation) RowSource { return relSource{r} }

type relSource struct{ r *relation.Relation }

func (s relSource) Schema() relation.Schema { return s.r.Schema }
func (s relSource) Len() int                { return s.r.Len() }
func (s relSource) Scan(fn func(relation.Tuple) error) error {
	for _, t := range s.r.Tuples {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// DataSource resolves detail relation names to scannable sources.
type DataSource interface {
	SchemaSource
	DetailSource(name string) (RowSource, error)
}

// Data is a map-based DataSource over materialized relations.
//
//skallavet:allow stringkey -- catalog keyed by relation name: resolved once per query, not per tuple
type Data map[string]*relation.Relation

// DetailSchema implements SchemaSource.
func (d Data) DetailSchema(name string) (relation.Schema, error) {
	r, err := d.DetailRelation(name)
	if err != nil {
		return nil, err
	}
	return r.Schema, nil
}

// DetailRelation returns the named materialized relation.
func (d Data) DetailRelation(name string) (*relation.Relation, error) {
	r, ok := d[name]
	if !ok {
		return nil, fmt.Errorf("gmdj: unknown detail relation %q", name)
	}
	return r, nil
}

// DetailSource implements DataSource.
func (d Data) DetailSource(name string) (RowSource, error) {
	r, err := d.DetailRelation(name)
	if err != nil {
		return nil, err
	}
	return SourceOf(r), nil
}

// EvalCentral evaluates a complex GMDJ expression against fully materialized
// data, exactly per Definition 1: each base tuple's aggregates are computed
// over RNG(b, R, θ). It is the centralized reference implementation — the
// role Daytona plays in the paper — and the correctness oracle for the
// distributed evaluator. Equality-linked conditions are evaluated with a
// hash-grouping fast path; set useHash=false to force the literal
// nested-loop semantics (used to cross-check the fast path).
func EvalCentral(q Query, src DataSource, useHash bool) (*relation.Relation, error) {
	x, err := EvalCentralX(q, src, useHash)
	if err != nil {
		return nil, err
	}
	return x.Project(FinalColumns(q))
}

// EvalCentralX is EvalCentral without the final projection: it returns the
// full base-result structure X (base columns, physical sub-aggregate columns
// and derived AVG columns). The distributed engine's local evaluation rounds
// (Prop. 2 / Cor. 1) ship this form so the coordinator can still merge
// physical columns by key.
func EvalCentralX(q Query, src DataSource, useHash bool) (*relation.Relation, error) {
	if err := q.Validate(src); err != nil {
		return nil, err
	}
	return evalPrefixX(q, src, len(q.Ops), useHash)
}

// EvalPrefixX evaluates the base query and the first upTo operators,
// returning the intermediate base-result structure X_upTo. The query must
// already be validated.
func EvalPrefixX(q Query, src DataSource, upTo int, useHash bool) (*relation.Relation, error) {
	if upTo < 0 || upTo > len(q.Ops) {
		return nil, fmt.Errorf("gmdj: prefix %d out of range (query has %d operators)", upTo, len(q.Ops))
	}
	return evalPrefixX(q, src, upTo, useHash)
}

func evalPrefixX(q Query, src DataSource, upTo int, useHash bool) (*relation.Relation, error) {
	baseRel, err := src.DetailSource(q.Base.Detail)
	if err != nil {
		return nil, err
	}
	x, err := EvalBase(q.Base, baseRel)
	if err != nil {
		return nil, err
	}
	for i := 0; i < upTo; i++ {
		op := q.Ops[i]
		detail, err := src.DetailSource(op.Detail)
		if err != nil {
			return nil, err
		}
		x, err = ApplyOperator(x, op, detail, useHash)
		if err != nil {
			return nil, fmt.Errorf("gmdj: MD%d: %w", i+1, err)
		}
	}
	return x, nil
}

// EvalBase computes the base-values relation B_0 from a detail source: an
// optional filter followed by a distinct projection, generalized to grouping
// sets when bq.GroupingSets is non-empty (the union over sets of NULL-padded
// distinct projections; see BaseQuery). The detail rows are streamed once;
// memory is bounded by the number of distinct base values.
func EvalBase(bq BaseQuery, detail RowSource) (*relation.Relation, error) {
	schema := detail.Schema()
	var where expr.Expr
	if bq.Where != nil {
		var err error
		where, err = expr.Bind(bq.Where, nil, schema)
		if err != nil {
			return nil, err
		}
	}
	idx, err := schema.Indexes(bq.Cols)
	if err != nil {
		return nil, err
	}
	out := relation.New(schema.Project(idx))
	allCols := make([]int, len(bq.Cols))
	for i := range allCols {
		allCols[i] = i
	}

	// Precompute the grouping-set masks; the plain distinct projection is
	// the single full set.
	sets := bq.GroupingSets
	if len(sets) == 0 {
		sets = [][]string{bq.Cols}
	}
	masks := make([][]bool, len(sets))
	for si, set := range sets {
		mask := make([]bool, len(bq.Cols))
		for _, col := range set {
			for i, c := range bq.Cols {
				if c == col {
					mask[i] = true
				}
			}
		}
		masks[si] = mask
	}

	seen := relation.NewKeySet(64)
	scratch := make(relation.Tuple, len(idx))
	err = scanCounted(detail, func(t relation.Tuple) error {
		if where != nil {
			ok, err := expr.EvalCond(where, nil, t)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		for _, mask := range masks {
			for i, j := range idx {
				if mask[i] {
					scratch[i] = t[j]
				} else {
					scratch[i] = relation.Null
				}
			}
			// Add interns the projection only for fresh keys; duplicates cost
			// one hash probe and no allocation.
			interned, fresh := seen.Add(scratch, allCols)
			if fresh {
				out.Tuples = append(out.Tuples, interned)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// OperatorAccum holds the per-base-row physical accumulators of one MD
// operator evaluation over one detail relation (or one partition of it), one
// slice per grouping variable, plus the Touched flags: Touched[i] is the
// |RNG(b_i, R, θ_1 ∨ … ∨ θ_m)| > 0 test of Proposition 1, used for
// distribution-independent group reduction.
type OperatorAccum struct {
	Layouts []*agg.Layout
	Accs    [][]relation.Tuple // [variable][baseRow]
	Touched []bool
}

// AccumulateOperator evaluates one MD operator's grouping variables over the
// detail rows, per Definition 1, producing physical sub-aggregate slices for
// every base row. The detail source is scanned once per grouping variable;
// conditions with equality links use a hash-grouping fast path over the base
// relation, grouping-set conditions use the 2^n-probe cube path, and
// everything else falls back to the literal nested loop (detail-outer, so
// disk-backed sources are still scanned sequentially).
func AccumulateOperator(x *relation.Relation, op Operator, detail RowSource, useHash bool) (*OperatorAccum, error) {
	out := &OperatorAccum{
		Layouts: make([]*agg.Layout, len(op.Vars)),
		Accs:    make([][]relation.Tuple, len(op.Vars)),
		Touched: make([]bool, x.Len()),
	}
	type varState struct {
		layout  *agg.Layout
		cond    expr.Expr
		hashIdx *relation.KeyIndex
		probe   []int
		// rollup marks the grouping-set fast path: probe holds the detail
		// column positions of the dimensions, and every detail row is probed
		// with all 2^n NULL paddings (each base row matches at most one —
		// the one mirroring its own NULL pattern).
		rollup bool
	}
	detailSchema := detail.Schema()
	states := make([]*varState, len(op.Vars))
	for vi, v := range op.Vars {
		layout, err := agg.NewLayout(v.Aggs, detailSchema)
		if err != nil {
			return nil, err
		}
		cond, err := expr.Bind(v.Cond, x.Schema, detailSchema)
		if err != nil {
			return nil, err
		}
		st := &varState{layout: layout, cond: cond}
		out.Layouts[vi] = layout
		accs := make([]relation.Tuple, x.Len())
		for i := range accs {
			accs[i] = layout.Identity()
		}
		out.Accs[vi] = accs
		if useHash {
			links := expr.EqualityLinks(cond)
			rollup := false
			if len(links) == 0 {
				// Grouping-set conditions have their equalities under ORs;
				// recognize the rollup shape and use the 2^n-probe cube path.
				if rl, ok := expr.RollupLinks(cond); ok && len(rl) <= 16 {
					links, rollup = rl, true
				}
			}
			if len(links) > 0 {
				baseCols := make([]string, len(links))
				st.probe = make([]int, len(links))
				usable := true
				for li, l := range links {
					baseCols[li] = l.Base
					di := detailSchema.Index(l.Detail)
					if di < 0 {
						usable = false
						break
					}
					st.probe[li] = di
				}
				if usable {
					if idx, err := relation.BuildKeyIndex(x, baseCols); err == nil {
						st.hashIdx = idx
						st.rollup = rollup
					}
				}
			}
		}
		states[vi] = st
	}

	for vi, st := range states {
		accs := out.Accs[vi]
		if st.hashIdx != nil && st.rollup {
			n := len(st.probe)
			padded := make(relation.Tuple, n)
			paddedCols := make([]int, n)
			for i := range paddedCols {
				paddedCols[i] = i
			}
			err := scanCounted(detail, func(dr relation.Tuple) error {
				// A NULL detail value pads identically whether its bit is
				// set or not; restrict masks to non-NULL dimensions so no
				// probe (and hence no base row) repeats for this detail row.
				nullBits := 0
				for i, di := range st.probe {
					if dr[di].IsNull() {
						nullBits |= 1 << i
					}
				}
				for mask := 0; mask < 1<<n; mask++ {
					if mask&nullBits != 0 {
						continue
					}
					for i, di := range st.probe {
						if mask&(1<<i) != 0 {
							padded[i] = dr[di]
						} else {
							padded[i] = relation.Null
						}
					}
					for _, bi := range st.hashIdx.Lookup(padded, paddedCols) {
						ok, err := expr.EvalCond(st.cond, x.Tuples[bi], dr)
						if err != nil {
							return err
						}
						if ok {
							if err := st.layout.Accumulate(accs[bi], dr); err != nil {
								return err
							}
							out.Touched[bi] = true
						}
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if st.hashIdx != nil {
			err := scanCounted(detail, func(dr relation.Tuple) error {
				for _, bi := range st.hashIdx.Lookup(dr, st.probe) {
					ok, err := expr.EvalCond(st.cond, x.Tuples[bi], dr)
					if err != nil {
						return err
					}
					if ok {
						if err := st.layout.Accumulate(accs[bi], dr); err != nil {
							return err
						}
						out.Touched[bi] = true
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		err := scanCounted(detail, func(dr relation.Tuple) error {
			for bi, br := range x.Tuples {
				ok, err := expr.EvalCond(st.cond, br, dr)
				if err != nil {
					return err
				}
				if ok {
					if err := st.layout.Accumulate(accs[bi], dr); err != nil {
						return err
					}
					out.Touched[bi] = true
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ExtendedSchema returns the base schema extended with the operator's
// physical and derived columns, in layout order.
func (a *OperatorAccum) ExtendedSchema(base relation.Schema) (relation.Schema, error) {
	out := base.Clone()
	var err error
	for _, l := range a.Layouts {
		if out, err = out.Concat(l.PhysSchema()); err != nil {
			return nil, err
		}
		if out, err = out.Concat(l.DerivedSchema()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ExtendRow returns base row i's values followed by its physical and derived
// aggregate values.
func (a *OperatorAccum) ExtendRow(baseRow relation.Tuple, i int) relation.Tuple {
	row := make(relation.Tuple, 0, len(baseRow)+a.physWidth())
	row = append(row, baseRow...)
	for vi, l := range a.Layouts {
		row = append(row, a.Accs[vi][i]...)
		row = append(row, l.ComputeDerived(a.Accs[vi][i])...)
	}
	return row
}

// PhysRow returns only base row i's physical aggregate values across all
// variables (the sub-aggregate payload shipped in H_i rows).
func (a *OperatorAccum) PhysRow(i int) relation.Tuple {
	var row relation.Tuple
	for vi := range a.Layouts {
		row = append(row, a.Accs[vi][i]...)
	}
	return row
}

// PhysSchema returns the concatenated physical schema across all variables.
func (a *OperatorAccum) PhysSchema() (relation.Schema, error) {
	var out relation.Schema
	var err error
	for _, l := range a.Layouts {
		if out, err = out.Concat(l.PhysSchema()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (a *OperatorAccum) physWidth() int {
	n := 0
	for _, l := range a.Layouts {
		n += len(l.Phys) + len(l.Derived)
	}
	return n
}

// ApplyOperator evaluates one MD operator: for every tuple of the incoming
// base-values relation x it computes, per grouping variable, the aggregates
// over the detail rows satisfying the variable's condition, and returns x
// extended with the new physical and derived columns. x is not modified.
func ApplyOperator(x *relation.Relation, op Operator, detail RowSource, useHash bool) (*relation.Relation, error) {
	acc, err := AccumulateOperator(x, op, detail, useHash)
	if err != nil {
		return nil, err
	}
	outSchema, err := acc.ExtendedSchema(x.Schema)
	if err != nil {
		return nil, err
	}
	out := relation.New(outSchema)
	out.Tuples = make([]relation.Tuple, x.Len())
	for i, br := range x.Tuples {
		out.Tuples[i] = acc.ExtendRow(br, i)
	}
	return out, nil
}
