// Package gmdj defines the GMDJ (Generalized Multi-Dimensional Join)
// operator of Definition 1 and complex GMDJ expressions (chains where the
// result of an inner GMDJ is the base-values relation of the outer one), a
// centralized reference evaluator, and the coalescing transformation of
// Sect. 4.3. The distributed evaluation lives in internal/core; this package
// is the algebraic core shared by both and the correctness oracle for the
// distributed engine's tests.
package gmdj

import (
	"fmt"
	"strings"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/relation"
)

// GroupVar is one (l_i, θ_i) pair of an MD operator: a list of aggregate
// functions and the condition that selects, for each base tuple b, the detail
// range RNG(b, R, θ) the aggregates are computed over.
type GroupVar struct {
	Aggs []agg.Spec
	Cond expr.Expr
}

// Operator is one MD operator application: one or more grouping variables
// evaluated against a named detail relation. Multiple grouping variables per
// operator arise naturally from coalescing (Sect. 4.3).
type Operator struct {
	Detail string
	Vars   []GroupVar
}

// OutputColumns returns every column name the operator appends to the
// base-result structure (physical sub-aggregate columns plus derived AVG
// columns), given the detail schema.
func (op Operator) OutputColumns(detail relation.Schema) ([]string, error) {
	var out []string
	for _, v := range op.Vars {
		l, err := agg.NewLayout(v.Aggs, detail)
		if err != nil {
			return nil, err
		}
		for _, c := range l.PhysSchema() {
			out = append(out, c.Name)
		}
		for _, c := range l.DerivedSchema() {
			out = append(out, c.Name)
		}
	}
	return out, nil
}

// BaseQuery defines the base-values relation B_0: a distinct projection of a
// detail relation, optionally filtered. The projection columns are the key
// attributes K of the base-values relation.
type BaseQuery struct {
	Detail string
	Cols   []string
	Where  expr.Expr // optional, detail-side only; nil keeps all rows
	// GroupingSets generalizes the distinct projection to SQL grouping sets
	// (and therefore CUBE/ROLLUP, Gray et al. [12]): the base-values
	// relation becomes the union over the sets S of the distinct projection
	// onto Cols with the columns outside S padded with NULL. Conditions of
	// the form (B.d IS NULL || B.d = R.d) then aggregate each detail row
	// into every grouping-set row it rolls up to (see internal/olap). Every
	// set must be a subset of Cols; empty means the single set Cols.
	//
	// As in Gray et al.'s ALL encoding, a NULL produced by rollup is not
	// distinguishable from a NULL occurring in the data.
	GroupingSets [][]string
}

// Query is a complex GMDJ expression: a base query followed by a chain of MD
// operators, each using the previous result as its base-values relation.
type Query struct {
	Base BaseQuery
	Ops  []Operator
}

// Keys returns the key attributes K of the base-values relation.
func (q Query) Keys() []string { return q.Base.Cols }

// String renders the query for logs and CLIs.
func (q Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BASE distinct %s over %s", strings.Join(q.Base.Cols, ","), q.Base.Detail)
	if q.Base.Where != nil {
		fmt.Fprintf(&b, " where %s", q.Base.Where)
	}
	for _, set := range q.Base.GroupingSets {
		fmt.Fprintf(&b, " set(%s)", strings.Join(set, ","))
	}
	for i, op := range q.Ops {
		fmt.Fprintf(&b, "\nMD%d over %s:", i+1, op.Detail)
		for _, v := range op.Vars {
			specs := make([]string, len(v.Aggs))
			for j, s := range v.Aggs {
				specs[j] = s.String()
			}
			fmt.Fprintf(&b, "\n  [%s] by %s", strings.Join(specs, "; "), v.Cond)
		}
	}
	return b.String()
}

// SchemaSource resolves detail relation names to schemas (the catalog view
// needed to validate and plan a query without touching data).
type SchemaSource interface {
	DetailSchema(name string) (relation.Schema, error)
}

// SchemaSourceFunc adapts a function to SchemaSource.
type SchemaSourceFunc func(string) (relation.Schema, error)

// DetailSchema implements SchemaSource.
func (f SchemaSourceFunc) DetailSchema(name string) (relation.Schema, error) { return f(name) }

// Schemas is a map-based SchemaSource.
//
//skallavet:allow stringkey -- catalog keyed by relation name: planning metadata, not tuple traffic
type Schemas map[string]relation.Schema

// DetailSchema implements SchemaSource.
func (s Schemas) DetailSchema(name string) (relation.Schema, error) {
	sch, ok := s[name]
	if !ok {
		return nil, fmt.Errorf("gmdj: unknown detail relation %q", name)
	}
	return sch, nil
}

// XSchemas computes the evolving schema of the base-result structure X:
// element 0 is the base-values schema; element k is the schema after the kth
// operator (base columns, then per grouping variable its physical
// sub-aggregate columns followed by its derived AVG columns).
func XSchemas(q Query, src SchemaSource) ([]relation.Schema, error) {
	baseDetail, err := src.DetailSchema(q.Base.Detail)
	if err != nil {
		return nil, err
	}
	idx, err := baseDetail.Indexes(q.Base.Cols)
	if err != nil {
		return nil, fmt.Errorf("gmdj: base query: %w", err)
	}
	cur := baseDetail.Project(idx)
	out := []relation.Schema{cur}
	for i, op := range q.Ops {
		detail, err := src.DetailSchema(op.Detail)
		if err != nil {
			return nil, fmt.Errorf("gmdj: MD%d: %w", i+1, err)
		}
		next := cur.Clone()
		for j, v := range op.Vars {
			l, err := agg.NewLayout(v.Aggs, detail)
			if err != nil {
				return nil, fmt.Errorf("gmdj: MD%d var %d: %w", i+1, j+1, err)
			}
			next, err = next.Concat(l.PhysSchema())
			if err != nil {
				return nil, fmt.Errorf("gmdj: MD%d var %d: %w", i+1, j+1, err)
			}
			next, err = next.Concat(l.DerivedSchema())
			if err != nil {
				return nil, fmt.Errorf("gmdj: MD%d var %d: %w", i+1, j+1, err)
			}
		}
		out = append(out, next)
		cur = next
	}
	return out, nil
}

// FinalColumns lists the logical output column names: the base key attributes
// followed by each aggregate's output name, in query order.
func FinalColumns(q Query) []string {
	out := append([]string{}, q.Base.Cols...)
	for _, op := range q.Ops {
		for _, v := range op.Vars {
			for _, s := range v.Aggs {
				out = append(out, s.As)
			}
		}
	}
	return out
}

// Validate checks the whole query against a schema source: detail relations
// exist, base columns and filter bind, every aggregate spec is well-typed,
// every condition binds against the evolving X schema on the base side and
// the operator's detail schema on the detail side, and output names are
// globally unique (guaranteed by the schema concatenation).
func (q Query) Validate(src SchemaSource) error {
	if len(q.Base.Cols) == 0 {
		return fmt.Errorf("gmdj: base query needs at least one projection column")
	}
	baseDetail, err := src.DetailSchema(q.Base.Detail)
	if err != nil {
		return err
	}
	if _, err := baseDetail.Indexes(q.Base.Cols); err != nil {
		return fmt.Errorf("gmdj: base query: %w", err)
	}
	if q.Base.Where != nil {
		if _, err := expr.Bind(q.Base.Where, nil, baseDetail); err != nil {
			return fmt.Errorf("gmdj: base filter: %w", err)
		}
	}
	for si, set := range q.Base.GroupingSets {
		for _, col := range set {
			found := false
			for _, c := range q.Base.Cols {
				if c == col {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("gmdj: grouping set %d: column %q not among base columns %v", si, col, q.Base.Cols)
			}
		}
	}
	xs, err := XSchemas(q, src)
	if err != nil {
		return err
	}
	for i, op := range q.Ops {
		if len(op.Vars) == 0 {
			return fmt.Errorf("gmdj: MD%d has no grouping variables", i+1)
		}
		detail, err := src.DetailSchema(op.Detail)
		if err != nil {
			return err
		}
		for j, v := range op.Vars {
			if v.Cond == nil {
				return fmt.Errorf("gmdj: MD%d var %d has no condition", i+1, j+1)
			}
			if len(v.Aggs) == 0 {
				return fmt.Errorf("gmdj: MD%d var %d has no aggregates", i+1, j+1)
			}
			// Conditions see the pre-operator X schema (all variables of one
			// operator are evaluated against the same base instance).
			if _, err := expr.Bind(v.Cond, xs[i], detail); err != nil {
				return fmt.Errorf("gmdj: MD%d var %d condition: %w", i+1, j+1, err)
			}
		}
	}
	return nil
}
