package gmdj

import (
	"sync"

	"skalla/internal/agg"
	"skalla/internal/relation"
)

// Operator fan-in: several registered consumers — concurrent queries whose
// current MD operators aggregate over the same detail relation — share ONE
// scan of the detail partition. Each detail row is offered to every job's
// grouping-variable feeders, so the scan cost (the dominant site-side cost
// for disk-backed partitions) is paid once per round instead of once per
// query. Correctness rests on the same observation as worker sharding: each
// job accumulates into private per-base-row partials, so jobs never interact
// — the fan-in result for a job is byte-identical to evaluating it alone.

// OperatorJob pairs one registered consumer's base-result fragment X with the
// MD operator to accumulate for it. All jobs in a batch must aggregate over
// the same detail source; their base relations and operators are otherwise
// independent.
type OperatorJob struct {
	X  *relation.Relation
	Op Operator
}

// AccumulateOperatorsFanIn evaluates every job's grouping variables over a
// single scan of the detail source (a single scan per shard under
// worker-parallel evaluation), returning one OperatorAccum per job in input
// order. A single-job batch delegates to AccumulateOperatorWorkers; any
// evaluation error aborts the whole batch (callers that need per-job error
// isolation fall back to per-job evaluation).
func AccumulateOperatorsFanIn(jobs []OperatorJob, detail RowSource, useHash bool, workers int) ([]*OperatorAccum, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	if len(jobs) == 1 {
		acc, err := AccumulateOperatorWorkers(jobs[0].X, jobs[0].Op, detail, useHash, workers)
		if err != nil {
			return nil, err
		}
		return []*OperatorAccum{acc}, nil
	}
	schema := detail.Schema()
	states := make([][]*varState, len(jobs))
	outs := make([]*OperatorAccum, len(jobs))
	for j, job := range jobs {
		st, err := buildVarStates(job.X, job.Op, schema, useHash)
		if err != nil {
			return nil, err
		}
		states[j] = st
		outs[j] = newOperatorAccum(job.X.Len(), st)
	}

	if shards := splitSource(detail, resolveWorkers(workers, detail.Len())); shards != nil {
		if err := fanInParallel(jobs, states, outs, shards); err != nil {
			return nil, err
		}
		return outs, nil
	}

	// Sequential: one pass over the detail drives every job's every feeder.
	// Feeders only touch their own job's partials, so interleaving them on a
	// shared row preserves each job's accumulation order exactly.
	feeders := make([]func(relation.Tuple) error, 0, len(jobs))
	hitsByJob := make([][]uint32, len(jobs))
	for j, job := range jobs {
		hits := make([]uint32, job.X.Len())
		hitsByJob[j] = hits
		for vi, st := range states[j] {
			feeders = append(feeders, st.feeder(job.X, outs[j].Accs[vi], hits))
		}
	}
	if err := scanCounted(detail, func(dr relation.Tuple) error {
		for _, f := range feeders {
			if err := f(dr); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for j := range jobs {
		for i, h := range hitsByJob[j] {
			outs[j].Touched[i] = h > 0
		}
	}
	return outs, nil
}

// newOperatorAccum allocates an accum with identity partials for every
// (variable, base row) cell.
func newOperatorAccum(baseRows int, states []*varState) *OperatorAccum {
	out := &OperatorAccum{
		Layouts: make([]*agg.Layout, len(states)),
		Accs:    make([][]relation.Tuple, len(states)),
		Touched: make([]bool, baseRows),
	}
	for vi, st := range states {
		out.Layouts[vi] = st.layout
		accs := make([]relation.Tuple, baseRows)
		for i := range accs {
			accs[i] = st.layout.Identity()
		}
		out.Accs[vi] = accs
	}
	return out
}

// fanInParallel is the sharded fan-in: one goroutine per detail shard scans
// its rows once, feeding every job's feeders over per-(worker, job) private
// partials — the same per-worker accumulator isolation as accumulateParallel,
// replicated per job. Each job's partials are then folded with the standard
// skew-aware worker merge, so per-job results match its solo evaluation.
func fanInParallel(jobs []OperatorJob, states [][]*varState, outs []*OperatorAccum, shards []RowSource) error {
	// was[j][w] is worker w's private partials for job j.
	was := make([][]*workerAccum, len(jobs))
	for j, job := range jobs {
		was[j] = make([]*workerAccum, len(shards))
		for w := range shards {
			wa := &workerAccum{
				accs: make([][]relation.Tuple, len(states[j])),
				hits: make([]uint32, job.X.Len()),
			}
			for vi, st := range states[j] {
				accs := make([]relation.Tuple, job.X.Len())
				for i := range accs {
					accs[i] = st.layout.Identity()
				}
				wa.accs[vi] = accs
			}
			was[j][w] = wa
		}
	}
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for w := range shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			feeders := make([]func(relation.Tuple) error, 0, len(jobs))
			for j, job := range jobs {
				for vi, st := range states[j] {
					feeders = append(feeders, st.feeder(job.X, was[j][w].accs[vi], was[j][w].hits))
				}
			}
			errs[w] = scanCountedWorker(shards[w], w, func(dr relation.Tuple) error {
				for _, f := range feeders {
					if err := f(dr); err != nil {
						return err
					}
				}
				return nil
			})
		}(w)
	}
	wg.Wait()
	// Lowest worker index wins so the reported error is deterministic.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for j, job := range jobs {
		if err := mergeWorkerAccums(job.X.Len(), states[j], outs[j], was[j]); err != nil {
			return err
		}
	}
	return nil
}
