package gmdj

import (
	"math/rand"
	"strings"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/relation"
)

func flowRelation() *relation.Relation {
	r := relation.New(relation.MustSchema(
		relation.Column{Name: "SAS", Kind: relation.KindInt},
		relation.Column{Name: "DAS", Kind: relation.KindInt},
		relation.Column{Name: "NB", Kind: relation.KindInt},
	))
	rows := [][3]int64{
		{1, 1, 10}, {1, 1, 20}, {1, 1, 30},
		{1, 2, 5},
		{2, 1, 7}, {2, 1, 9},
	}
	for _, x := range rows {
		r.MustAppend(relation.Tuple{relation.NewInt(x[0]), relation.NewInt(x[1]), relation.NewInt(x[2])})
	}
	return r
}

// example1 is the paper's Example 1: per (SourceAS, DestAS), the total number
// of flows and the number of flows whose NB exceeds the group average.
func example1() Query {
	return Query{
		Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS", "DAS"}},
		Ops: []Operator{
			{Detail: "Flow", Vars: []GroupVar{{
				Aggs: []agg.Spec{
					{Func: agg.Count, As: "cnt1"},
					{Func: agg.Sum, Arg: "NB", As: "sum1"},
				},
				Cond: expr.MustParse("B.SAS = R.SAS && B.DAS = R.DAS"),
			}}},
			{Detail: "Flow", Vars: []GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "cnt2"}},
				Cond: expr.MustParse("B.SAS = R.SAS && B.DAS = R.DAS && R.NB >= B.sum1 / B.cnt1"),
			}}},
		},
	}
}

func findRow(t *testing.T, r *relation.Relation, sas, das int64) relation.Tuple {
	t.Helper()
	si, di := r.Schema.MustIndex("SAS"), r.Schema.MustIndex("DAS")
	for _, tp := range r.Tuples {
		if tp[si].Int == sas && tp[di].Int == das {
			return tp
		}
	}
	t.Fatalf("no row for (%d,%d) in\n%s", sas, das, r)
	return nil
}

func TestExample1Centralized(t *testing.T) {
	data := Data{"Flow": flowRelation()}
	for _, useHash := range []bool{true, false} {
		res, err := EvalCentral(example1(), data, useHash)
		if err != nil {
			t.Fatalf("useHash=%v: %v", useHash, err)
		}
		if res.Len() != 3 {
			t.Fatalf("useHash=%v: %d groups, want 3\n%s", useHash, res.Len(), res)
		}
		wantCols := []string{"SAS", "DAS", "cnt1", "sum1", "cnt2"}
		if got := strings.Join(res.Schema.Names(), ","); got != strings.Join(wantCols, ",") {
			t.Fatalf("schema = %s", got)
		}
		check := func(sas, das, cnt1, sum1, cnt2 int64) {
			row := findRow(t, res, sas, das)
			if row[2].Int != cnt1 || row[3].Int != sum1 || row[4].Int != cnt2 {
				t.Errorf("useHash=%v group(%d,%d) = cnt1=%v sum1=%v cnt2=%v, want %d %d %d",
					useHash, sas, das, row[2], row[3], row[4], cnt1, sum1, cnt2)
			}
		}
		check(1, 1, 3, 60, 2) // avg 20; NB>=20 are 20 and 30
		check(1, 2, 1, 5, 1)
		check(2, 1, 2, 16, 1) // avg 8; NB>=8 is 9
	}
}

func TestExample1WithAvgColumnReference(t *testing.T) {
	// Same query but computing AVG(NB) and referencing the derived average
	// column in the second operator's condition.
	q := Query{
		Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS", "DAS"}},
		Ops: []Operator{
			{Detail: "Flow", Vars: []GroupVar{{
				Aggs: []agg.Spec{
					{Func: agg.Count, As: "cnt1"},
					{Func: agg.Avg, Arg: "NB", As: "avgNB"},
				},
				Cond: expr.MustParse("B.SAS = R.SAS && B.DAS = R.DAS"),
			}}},
			{Detail: "Flow", Vars: []GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "cnt2"}},
				Cond: expr.MustParse("B.SAS = R.SAS && B.DAS = R.DAS && R.NB >= B.avgNB"),
			}}},
		},
	}
	res, err := EvalCentral(q, Data{"Flow": flowRelation()}, true)
	if err != nil {
		t.Fatal(err)
	}
	row := findRow(t, res, 1, 1)
	avgIdx := res.Schema.MustIndex("avgNB")
	cnt2Idx := res.Schema.MustIndex("cnt2")
	if row[avgIdx].Float != 20.0 || row[cnt2Idx].Int != 2 {
		t.Errorf("avg/cnt2 = %v/%v", row[avgIdx], row[cnt2Idx])
	}
}

func TestEvalBaseWithWhere(t *testing.T) {
	bq := BaseQuery{Detail: "Flow", Cols: []string{"SAS"}, Where: expr.MustParse("R.NB > 6")}
	b, err := EvalBase(bq, SourceOf(flowRelation()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 { // SAS 1 (NB 10,20,30) and SAS 2 (7,9); SAS=1 NB=5 filtered but 1 still present
		t.Fatalf("base rows = %d\n%s", b.Len(), b)
	}
	bq2 := BaseQuery{Detail: "Flow", Cols: []string{"SAS"}, Where: expr.MustParse("R.NB > 1000")}
	b2, _ := EvalBase(bq2, SourceOf(flowRelation()))
	if b2.Len() != 0 {
		t.Errorf("empty filter should give 0 base rows, got %d", b2.Len())
	}
	bq3 := BaseQuery{Detail: "Flow", Cols: []string{"SAS"}, Where: expr.MustParse("R.NB + 1")}
	if _, err := EvalBase(bq3, SourceOf(flowRelation())); err == nil {
		t.Error("non-boolean filter must error")
	}
}

func TestOverlappingRanges(t *testing.T) {
	// RNG sets for different base tuples may overlap (the paper stresses that
	// conventional group-by cannot express this). Every detail row with
	// NB >= B.SAS*10 counts for the group: groups with smaller SAS see more
	// rows; totals across groups exceed the table size.
	q := Query{
		Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS"}},
		Ops: []Operator{{Detail: "Flow", Vars: []GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "c"}},
			Cond: expr.MustParse("R.NB >= B.SAS * 10"),
		}}}},
	}
	res, err := EvalCentral(q, Data{"Flow": flowRelation()}, true)
	if err != nil {
		t.Fatal(err)
	}
	ci := res.Schema.MustIndex("c")
	si := res.Schema.MustIndex("SAS")
	for _, row := range res.Tuples {
		switch row[si].Int {
		case 1:
			if row[ci].Int != 3 { // NB in {10,20,30}
				t.Errorf("SAS=1 count = %v", row[ci])
			}
		case 2:
			if row[ci].Int != 2 { // NB in {20,30}
				t.Errorf("SAS=2 count = %v", row[ci])
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	src := Data{"Flow": flowRelation()}
	cases := []struct {
		name string
		q    Query
	}{
		{"no base cols", Query{Base: BaseQuery{Detail: "Flow"}}},
		{"unknown detail", Query{Base: BaseQuery{Detail: "Nope", Cols: []string{"SAS"}}}},
		{"unknown base col", Query{Base: BaseQuery{Detail: "Flow", Cols: []string{"zz"}}}},
		{"bad filter", Query{Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS"}, Where: expr.MustParse("R.zz = 1")}}},
		{"base ref in filter", Query{Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS"}, Where: expr.MustParse("B.SAS = 1")}}},
		{"op without vars", Query{
			Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS"}},
			Ops:  []Operator{{Detail: "Flow"}},
		}},
		{"var without aggs", Query{
			Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS"}},
			Ops:  []Operator{{Detail: "Flow", Vars: []GroupVar{{Cond: expr.MustParse("true")}}}},
		}},
		{"var without cond", Query{
			Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS"}},
			Ops:  []Operator{{Detail: "Flow", Vars: []GroupVar{{Aggs: []agg.Spec{{Func: agg.Count, As: "c"}}}}}},
		}},
		{"cond references future column", Query{
			Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS"}},
			Ops: []Operator{{Detail: "Flow", Vars: []GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "c"}},
				Cond: expr.MustParse("B.c > 0"), // produced by this very operator
			}}}},
		}},
		{"duplicate output names", Query{
			Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS"}},
			Ops: []Operator{
				{Detail: "Flow", Vars: []GroupVar{{Aggs: []agg.Spec{{Func: agg.Count, As: "c"}}, Cond: expr.MustParse("true")}}},
				{Detail: "Flow", Vars: []GroupVar{{Aggs: []agg.Spec{{Func: agg.Count, As: "c"}}, Cond: expr.MustParse("true")}}},
			},
		}},
		{"agg name collides with base col", Query{
			Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS"}},
			Ops: []Operator{{Detail: "Flow", Vars: []GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "SAS"}},
				Cond: expr.MustParse("true"),
			}}}},
		}},
	}
	for _, c := range cases {
		if err := c.q.Validate(src); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	if err := example1().Validate(src); err != nil {
		t.Errorf("example1 must validate: %v", err)
	}
}

func TestXSchemasAndFinalColumns(t *testing.T) {
	src := Data{"Flow": flowRelation()}
	xs, err := XSchemas(example1(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 3 {
		t.Fatalf("XSchemas len = %d", len(xs))
	}
	if xs[0].String() != "(SAS INT, DAS INT)" {
		t.Errorf("X0 = %s", xs[0])
	}
	if !xs[1].Has("cnt1") || !xs[1].Has("sum1") || xs[1].Has("cnt2") {
		t.Errorf("X1 = %s", xs[1])
	}
	if !xs[2].Has("cnt2") {
		t.Errorf("X2 = %s", xs[2])
	}
	cols := FinalColumns(example1())
	want := "SAS,DAS,cnt1,sum1,cnt2"
	if strings.Join(cols, ",") != want {
		t.Errorf("FinalColumns = %v", cols)
	}
}

func TestQueryString(t *testing.T) {
	s := example1().String()
	for _, frag := range []string{"BASE distinct SAS,DAS over Flow", "MD1 over Flow", "COUNT(*) -> cnt1", "MD2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Query.String missing %q:\n%s", frag, s)
		}
	}
	q := example1()
	q.Base.Where = expr.MustParse("R.NB > 0")
	if !strings.Contains(q.String(), "where") {
		t.Error("Query.String missing filter")
	}
}

func TestCanCoalesce(t *testing.T) {
	src := Data{"Flow": flowRelation()}
	q := example1()
	// MD2 references B.sum1/B.cnt1 generated by MD1: not coalescible.
	ok, err := CanCoalesce(q.Ops[0], q.Ops[1], src)
	if err != nil || ok {
		t.Errorf("dependent ops: CanCoalesce = %v, %v", ok, err)
	}
	// Independent second operator: coalescible.
	indep := Operator{Detail: "Flow", Vars: []GroupVar{{
		Aggs: []agg.Spec{{Func: agg.Count, As: "cnt2"}},
		Cond: expr.MustParse("B.SAS = R.SAS && R.NB > 8"),
	}}}
	ok, err = CanCoalesce(q.Ops[0], indep, src)
	if err != nil || !ok {
		t.Errorf("independent ops: CanCoalesce = %v, %v", ok, err)
	}
	// Different detail relations: never coalescible.
	other := indep
	other.Detail = "Other"
	if ok, _ := CanCoalesce(q.Ops[0], other, src); ok {
		t.Error("different detail relations must not coalesce")
	}
	// AVG derived column reference also blocks coalescing.
	avgOp := Operator{Detail: "Flow", Vars: []GroupVar{{
		Aggs: []agg.Spec{{Func: agg.Avg, Arg: "NB", As: "a1"}},
		Cond: expr.MustParse("B.SAS = R.SAS"),
	}}}
	dep := Operator{Detail: "Flow", Vars: []GroupVar{{
		Aggs: []agg.Spec{{Func: agg.Count, As: "c2"}},
		Cond: expr.MustParse("R.NB >= B.a1"),
	}}}
	if ok, _ := CanCoalesce(avgOp, dep, src); ok {
		t.Error("reference to derived AVG column must block coalescing")
	}
}

func TestCoalescePreservesResults(t *testing.T) {
	src := Data{"Flow": flowRelation()}
	q := Query{
		Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS", "DAS"}},
		Ops: []Operator{
			{Detail: "Flow", Vars: []GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "cnt1"}, {Func: agg.Sum, Arg: "NB", As: "sum1"}},
				Cond: expr.MustParse("B.SAS = R.SAS && B.DAS = R.DAS"),
			}}},
			{Detail: "Flow", Vars: []GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "cnt2"}},
				Cond: expr.MustParse("B.SAS = R.SAS && B.DAS = R.DAS && R.NB > 8"),
			}}},
		},
	}
	cq, merges, err := Coalesce(q, src)
	if err != nil || merges != 1 {
		t.Fatalf("Coalesce merges = %d, err = %v", merges, err)
	}
	if len(cq.Ops) != 1 || len(cq.Ops[0].Vars) != 2 {
		t.Fatalf("coalesced shape: %d ops, %d vars", len(cq.Ops), len(cq.Ops[0].Vars))
	}
	r1, err := EvalCentral(q, src, true)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EvalCentral(cq, src, true)
	if err != nil {
		t.Fatal(err)
	}
	r1.Sort()
	r2.Sort()
	if !r1.EqualMultiset(r2) {
		t.Errorf("coalescing changed results:\n%s\nvs\n%s", r1, r2)
	}
	// Original query untouched.
	if len(q.Ops) != 2 {
		t.Error("Coalesce mutated input query")
	}
	// Dependent query must not be merged.
	_, merges, err = Coalesce(example1(), src)
	if err != nil || merges != 0 {
		t.Errorf("dependent query merges = %d, err=%v", merges, err)
	}
}

// Hash-path and nested-loop evaluation must agree on randomized data and a
// family of conditions with residual predicates.
func TestHashVsNestedLoopRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		r := relation.New(relation.MustSchema(
			relation.Column{Name: "g", Kind: relation.KindInt},
			relation.Column{Name: "h", Kind: relation.KindInt},
			relation.Column{Name: "v", Kind: relation.KindInt},
		))
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			r.MustAppend(relation.Tuple{
				relation.NewInt(int64(rng.Intn(5))),
				relation.NewInt(int64(rng.Intn(3))),
				relation.NewInt(int64(rng.Intn(100))),
			})
		}
		conds := []string{
			"B.g = R.g",
			"B.g = R.g && R.v > 50",
			"B.g = R.g && B.h = R.h",
			"B.g = R.g && R.v % 2 = 0",
		}
		q := Query{
			Base: BaseQuery{Detail: "T", Cols: []string{"g", "h"}},
			Ops: []Operator{{Detail: "T", Vars: []GroupVar{{
				Aggs: []agg.Spec{
					{Func: agg.Count, As: "c"},
					{Func: agg.Sum, Arg: "v", As: "s"},
					{Func: agg.Min, Arg: "v", As: "mn"},
					{Func: agg.Max, Arg: "v", As: "mx"},
				},
				Cond: expr.MustParse(conds[trial%len(conds)]),
			}}}},
		}
		src := Data{"T": r}
		a, err := EvalCentral(q, src, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := EvalCentral(q, src, false)
		if err != nil {
			t.Fatal(err)
		}
		if !a.EqualMultiset(b) {
			t.Fatalf("trial %d: hash and nested-loop disagree:\n%s\nvs\n%s", trial, a, b)
		}
	}
}

func TestDataSourceErrors(t *testing.T) {
	d := Data{}
	if _, err := d.DetailRelation("x"); err == nil {
		t.Error("missing relation must error")
	}
	if _, err := d.DetailSchema("x"); err == nil {
		t.Error("missing schema must error")
	}
	s := Schemas{}
	if _, err := s.DetailSchema("x"); err == nil {
		t.Error("missing schema must error")
	}
}
