package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Filter returns the rows of one series, ordered by X.
func Filter(rows []Row, series string) []Row {
	var out []Row
	for _, r := range rows {
		if r.Series == series {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// Series lists the distinct series names in first-appearance order.
func Series(rows []Row) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, r := range rows {
		if _, ok := seen[r.Series]; !ok {
			seen[r.Series] = struct{}{}
			out = append(out, r.Series)
		}
	}
	return out
}

// Metric selectors for shape analysis.
var (
	MetricTime  = func(r Row) float64 { return float64(r.Time) }
	MetricBytes = func(r Row) float64 { return float64(r.Bytes) }
	MetricRows  = func(r Row) float64 { return float64(r.Rows) }
)

// GrowthRatio measures how a series' metric grows from X = hi/2 to X = hi:
// ≈2 indicates linear growth, ≈4 quadratic. It is how the tests and
// EXPERIMENTS.md classify the curve shapes the paper describes.
func GrowthRatio(rows []Row, series string, hi int, metric func(Row) float64) (float64, error) {
	sr := Filter(rows, series)
	var yHi, yMid float64
	var haveHi, haveMid bool
	for _, r := range sr {
		if r.X == hi {
			yHi, haveHi = metric(r), true
		}
		if r.X == hi/2 {
			yMid, haveMid = metric(r), true
		}
	}
	if !haveHi || !haveMid {
		return 0, fmt.Errorf("bench: series %q lacks points at %d and %d", series, hi, hi/2)
	}
	if yMid == 0 {
		return 0, fmt.Errorf("bench: series %q is zero at %d", series, hi/2)
	}
	return yHi / yMid, nil
}

// Render formats the rows of an experiment as an aligned table grouped by
// series, in the units the corresponding paper figure uses (time and bytes;
// group rows and the breakdown are included for the analyses).
func Render(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, s := range Series(rows) {
		fmt.Fprintf(&b, "-- %s --\n", s)
		fmt.Fprintf(&b, "%4s %12s %12s %10s %8s %7s %12s %12s %12s\n",
			"x", "time", "bytes", "rows", "groups", "rounds", "site", "coord", "comm")
		for _, r := range Filter(rows, s) {
			fmt.Fprintf(&b, "%4d %12s %12d %10d %8d %7d %12s %12s %12s\n",
				r.X, fmtDur(r.Time), r.Bytes, r.Rows, r.Groups, r.Rounds,
				fmtDur(r.SiteTime), fmtDur(r.CoordTime), fmtDur(r.CommTime))
		}
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
