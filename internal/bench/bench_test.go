package bench

import (
	"context"
	"strings"
	"testing"

	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/stats"
	"skalla/internal/tpc"
)

// smallConfig is a fast instance preserving the cardinality structure.
func smallConfig() tpc.Config {
	return tpc.Config{Rows: 4000, Customers: 2000, Nations: 25, CitiesPerNation: 6, Clerks: 80, Seed: 3}
}

func smallDataset(t *testing.T, sites int) *tpc.Dataset {
	t.Helper()
	d, err := tpc.Generate(smallConfig(), sites)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewTPCCluster(t *testing.T) {
	d := smallDataset(t, 4)
	c, err := NewTPCCluster(context.Background(), d, 3, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Coord.NumSites() != 3 || len(c.Sites) != 3 {
		t.Errorf("cluster size = %d/%d", c.Coord.NumSites(), len(c.Sites))
	}
	if _, err := NewTPCCluster(context.Background(), d, 0, stats.NetModel{}); err == nil {
		t.Error("zero sites must error")
	}
	if _, err := NewTPCCluster(context.Background(), d, 5, stats.NetModel{}); err == nil {
		t.Error("too many sites must error")
	}
}

func TestTwoPhaseQueryShapes(t *testing.T) {
	dep := TwoPhaseQuery(HighCardAttr, true)
	indep := TwoPhaseQuery(HighCardAttr, false)
	d := smallDataset(t, 2)
	src := gmdj.Schemas{tpc.RelationName: tpc.Schema()}
	if err := dep.Validate(src); err != nil {
		t.Errorf("dependent query invalid: %v", err)
	}
	if err := indep.Validate(src); err != nil {
		t.Errorf("independent query invalid: %v", err)
	}
	// Dependent is non-coalescible, independent is coalescible.
	if _, merges, _ := gmdj.Coalesce(dep, src); merges != 0 {
		t.Error("dependent query must not coalesce")
	}
	if _, merges, _ := gmdj.Coalesce(indep, src); merges != 1 {
		t.Error("independent query must coalesce")
	}
	_ = d
}

// Distributed results on the experiment workloads must match the
// centralized oracle (sanity for the whole harness path).
func TestWorkloadsMatchOracle(t *testing.T) {
	d := smallDataset(t, 3)
	c, err := NewTPCCluster(context.Background(), d, 3, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	oracleData := gmdj.Data{tpc.RelationName: d.Global()}
	for _, q := range []gmdj.Query{
		TwoPhaseQuery(HighCardAttr, true),
		TwoPhaseQuery(LowCardAlignedAttr, true),
		TwoPhaseQuery(LowCardAttr, false),
	} {
		want, err := gmdj.EvalCentral(q, oracleData, true)
		if err != nil {
			t.Fatal(err)
		}
		r, err := measure(context.Background(), c, q, plan.All(), "x", 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Groups != want.Len() {
			t.Errorf("group count %d, oracle %d", r.Groups, want.Len())
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("speed-up sweep")
	}
	d := smallDataset(t, 4)
	rows, err := Fig2(context.Background(), d, 4, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	// Non-reduced traffic is quadratic in participating sites: the ratio of
	// rows transferred from 2 to 4 sites approaches 4 (paper Sect. 5.2).
	quad, err := GrowthRatio(rows, "no-reduction", 4, MetricRows)
	if err != nil {
		t.Fatal(err)
	}
	if quad < 3.0 {
		t.Errorf("no-reduction growth %f, want near-quadratic (>3)", quad)
	}
	// Both reductions make traffic linear (ratio ≈ 2).
	lin, err := GrowthRatio(rows, "both-reductions", 4, MetricRows)
	if err != nil {
		t.Fatal(err)
	}
	if lin > 2.6 {
		t.Errorf("both-reductions growth %f, want near-linear (<2.6)", lin)
	}
	// Site-side reduction alone still has a quadratic component (the
	// coordinator→site leg), so it sits between.
	site, _ := GrowthRatio(rows, "site-reduction", 4, MetricRows)
	if site <= lin || site > quad+0.1 {
		t.Errorf("site-reduction growth %f not between linear %f and quadratic %f", site, lin, quad)
	}
	// At every point, reduced variants move no more rows than unreduced.
	for _, n := range []int{1, 2, 3, 4} {
		base := Filter(rows, "no-reduction")[n-1]
		for _, s := range []string{"site-reduction", "coord-reduction", "both-reductions"} {
			r := Filter(rows, s)[n-1]
			if r.Rows > base.Rows {
				t.Errorf("%s at %d sites moves %d rows > baseline %d", s, n, r.Rows, base.Rows)
			}
			if r.Groups != base.Groups {
				t.Errorf("%s at %d sites: %d groups != baseline %d", s, n, r.Groups, base.Groups)
			}
		}
	}
}

func TestFig3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("speed-up sweep")
	}
	d := smallDataset(t, 4)
	rows, err := Fig3(context.Background(), d, 4, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	for _, card := range []string{"high", "low"} {
		co := Filter(rows, card+"/coalesced")
		nc := Filter(rows, card+"/non-coalesced")
		if len(co) != 4 || len(nc) != 4 {
			t.Fatalf("%s: missing points", card)
		}
		for i := range co {
			// One evaluation round saved: 2 rounds vs 3.
			if co[i].Rounds != 2 || nc[i].Rounds != 3 {
				t.Errorf("%s at %d sites: rounds %d/%d, want 2/3", card, co[i].X, co[i].Rounds, nc[i].Rounds)
			}
			if co[i].Rows >= nc[i].Rows {
				t.Errorf("%s at %d sites: coalesced rows %d !< %d", card, co[i].X, co[i].Rows, nc[i].Rows)
			}
			if co[i].Groups != nc[i].Groups {
				t.Errorf("%s: group counts differ", card)
			}
		}
	}
	// High-cardinality groups outnumber low-cardinality groups.
	if Filter(rows, "high/coalesced")[3].Groups <= Filter(rows, "low/coalesced")[3].Groups {
		t.Error("high-card query must have more groups than low-card")
	}
}

func TestFig4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("speed-up sweep")
	}
	d := smallDataset(t, 4)
	rows, err := Fig4(context.Background(), d, 4, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	for _, card := range []string{"high", "low"} {
		red := Filter(rows, card+"/sync-reduction")
		base := Filter(rows, card+"/no-sync-reduction")
		for i := range red {
			if red[i].Rounds != 1 {
				t.Errorf("%s at %d sites: sync-reduced rounds = %d, want 1", card, red[i].X, red[i].Rounds)
			}
			if base[i].Rounds != 3 {
				t.Errorf("%s at %d sites: baseline rounds = %d, want 3", card, base[i].X, base[i].Rounds)
			}
			if red[i].Rows >= base[i].Rows {
				t.Errorf("%s at %d sites: sync reduction did not cut traffic (%d vs %d)",
					card, red[i].X, red[i].Rows, base[i].Rows)
			}
		}
	}
	// Sync-reduced traffic is a single up-leg: exactly the union of the
	// sites' group fragments (linear in sites for the aligned attribute).
	red := Filter(rows, "high/sync-reduction")
	if red[3].RowsDown != 0 {
		t.Errorf("sync-reduced plan ships %d rows down, want 0", red[3].RowsDown)
	}
}

func TestFig5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-up sweep")
	}
	base := smallConfig()
	base.Rows = 2000
	base.Customers = 800
	rows, err := Fig5(context.Background(), base, 4, 3, false, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	opt := Filter(rows, "optimized")
	unopt := Filter(rows, "unoptimized")
	if len(opt) != 3 || len(unopt) != 3 {
		t.Fatalf("points: %d/%d", len(opt), len(unopt))
	}
	for i := range opt {
		if opt[i].Rows >= unopt[i].Rows {
			t.Errorf("scale %d: optimized rows %d !< %d", opt[i].X, opt[i].Rows, unopt[i].Rows)
		}
		if opt[i].Groups != unopt[i].Groups {
			t.Errorf("scale %d: group mismatch", opt[i].X)
		}
	}
	// Both series grow roughly linearly in data size (growth from x1 to x3
	// stays well below the x9 a quadratic would give).
	for _, s := range []string{"optimized", "unoptimized"} {
		sr := Filter(rows, s)
		if g := float64(sr[2].Rows) / float64(sr[0].Rows); g > 5 {
			t.Errorf("%s grows superlinearly in data size: %f", s, g)
		}
	}
	// Constant-group variant: group count stays flat.
	crows, err := Fig5(context.Background(), base, 4, 2, true, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	copt := Filter(crows, "optimized")
	// The group domain is fixed; the realized count may drift slightly at
	// small scale because not every customer is sampled. Allow 10%.
	drift := float64(copt[1].Groups-copt[0].Groups) / float64(copt[0].Groups)
	if drift < 0 || drift > 0.10 {
		t.Errorf("constant-groups variant changed groups: %d -> %d (drift %.2f)",
			copt[0].Groups, copt[1].Groups, drift)
	}
}

func TestFig2FormulaWithin5Percent(t *testing.T) {
	if testing.Short() {
		t.Skip("formula sweep")
	}
	d := smallDataset(t, 4)
	for _, n := range []int{2, 4} {
		fc, err := Fig2Formula(context.Background(), d, n, stats.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		if fc.RelError() > 0.05 {
			t.Errorf("n=%d: measured %f vs predicted %f (err %.1f%%), want within 5%%",
				n, fc.Measured, fc.Predicted, 100*fc.RelError())
		}
		if fc.C <= 0 || fc.C > 1.01 {
			t.Errorf("n=%d: c = %f out of range", n, fc.C)
		}
	}
}

func TestRenderAndHelpers(t *testing.T) {
	rows := []Row{
		{Series: "a", X: 1, Rows: 10},
		{Series: "a", X: 2, Rows: 20},
		{Series: "b", X: 1, Rows: 5},
	}
	s := Render("demo", rows)
	for _, frag := range []string{"== demo ==", "-- a --", "-- b --"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Render missing %q", frag)
		}
	}
	if got := Series(rows); len(got) != 2 || got[0] != "a" {
		t.Errorf("Series = %v", got)
	}
	g, err := GrowthRatio(rows, "a", 2, MetricRows)
	if err != nil || g != 2 {
		t.Errorf("GrowthRatio = %f, %v", g, err)
	}
	if _, err := GrowthRatio(rows, "b", 2, MetricRows); err == nil {
		t.Error("missing point must error")
	}
	if _, err := GrowthRatio(rows, "zz", 2, MetricRows); err == nil {
		t.Error("missing series must error")
	}
	zero := []Row{{Series: "z", X: 1, Rows: 0}, {Series: "z", X: 2, Rows: 3}}
	if _, err := GrowthRatio(zero, "z", 2, MetricRows); err == nil {
		t.Error("zero midpoint must error")
	}
}

func TestFormulaCheckRelError(t *testing.T) {
	fc := FormulaCheck{Measured: 1.05, Predicted: 1.0}
	if e := fc.RelError(); e < 0.049 || e > 0.051 {
		t.Errorf("RelError = %f", e)
	}
	if (FormulaCheck{}).RelError() != 0 {
		t.Error("zero prediction must not divide by zero")
	}
}

// TestPlanModesExample1 is the planner acceptance check on the paper's
// Example 1 workload shape: auto mode never plans more rounds (nor a worse
// estimate) than enabling all rules, its result matches the unoptimized
// baseline byte-for-byte, and the fingerprint is stable across compiles.
func TestPlanModesExample1(t *testing.T) {
	d := smallDataset(t, 4)
	ctx := context.Background()
	q := TwoPhaseQuery(HighCardAttr, true)
	c, err := NewTPCCluster(ctx, d, 4, stats.DefaultLAN())
	if err != nil {
		t.Fatal(err)
	}
	auto, err := c.Coord.PlanWith(ctx, q, plan.SelectAuto())
	if err != nil {
		t.Fatal(err)
	}
	all, err := c.Coord.PlanWith(ctx, q, plan.SelectAll())
	if err != nil {
		t.Fatal(err)
	}
	if auto.Estimate.Rounds > all.Estimate.Rounds {
		t.Errorf("auto plans %d round(s), all-rules plans %d", auto.Estimate.Rounds, all.Estimate.Rounds)
	}
	if auto.Estimate.Compare(all.Estimate) > 0 {
		t.Errorf("auto estimate %s worse than all-rules %s", auto.Estimate, all.Estimate)
	}
	again, err := c.Coord.PlanWith(ctx, q, plan.SelectAuto())
	if err != nil {
		t.Fatal(err)
	}
	if auto.Fingerprint != again.Fingerprint || auto.Fingerprint == "" {
		t.Errorf("auto fingerprint unstable: %q vs %q", auto.Fingerprint, again.Fingerprint)
	}
	rows, err := PlanModes(ctx, d, 2, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("PlanModes rows = %d, want 6", len(rows))
	}
	byGroups := map[string]int{}
	for _, r := range rows {
		if r.Plan.Fingerprint == "" || r.Plan.Mode == "" {
			t.Errorf("%s at %d sites: missing plan identity: %+v", r.Series, r.X, r.Plan)
		}
		if r.X == 2 {
			byGroups[r.Series] = r.Groups
		}
		for _, rr := range r.RoundDetail {
			if rr.EstBytesUp < 0 || rr.EstBytesDown < 0 {
				t.Errorf("%s round %s: negative estimate", r.Series, rr.Name)
			}
		}
	}
	if byGroups["mode/none"] != byGroups["mode/all"] || byGroups["mode/none"] != byGroups["mode/auto"] {
		t.Errorf("plan modes disagree on group count: %v", byGroups)
	}
}
