// Package bench is the experiment harness reproducing the paper's Sect. 5
// evaluation: the speed-up experiments of Figs. 2–4 (eight-site TPCR
// partitioning with a varying number of participating sites), the scale-up
// experiment of Fig. 5 (four sites, growing per-site data), and the
// analytic group-transfer formula check of Sect. 5.2. Each runner returns
// the series the corresponding figure plots; cmd/skalla-bench and the
// top-level bench_test.go print them.
package bench

import (
	"context"
	"fmt"
	"time"

	"skalla/internal/agg"
	"skalla/internal/core"
	"skalla/internal/distrib"
	"skalla/internal/engine"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/stats"
	"skalla/internal/tpc"
	"skalla/internal/transport"
)

// EvalWorkers is the evaluation parallelism applied to every cluster the
// harness builds: per-site scan workers plus the coordinator's concurrent
// stage commits. 0 (the default) sizes automatically, 1 forces the fully
// sequential paper-shaped evaluation. A package-level dial keeps the figure
// runners' signatures matching the paper's experiments; cmd/skalla-bench
// sets it from -workers and every measured Row records the value in force.
var EvalWorkers int

// Cluster is a ready-to-query distributed warehouse instance.
type Cluster struct {
	Coord   *core.Coordinator
	Sites   []transport.Site
	Catalog *distrib.Catalog
}

// NewTPCCluster builds a cluster over the first n partitions of a TPCR
// dataset, using the serializing in-process transport so byte counts are
// wire-faithful.
func NewTPCCluster(ctx context.Context, d *tpc.Dataset, n int, net stats.NetModel) (*Cluster, error) {
	if n <= 0 || n > d.NumSites {
		return nil, fmt.Errorf("bench: cluster over %d of %d sites", n, d.NumSites)
	}
	sites := make([]transport.Site, n)
	for i := 0; i < n; i++ {
		es := engine.NewSite(i)
		es.SetWorkers(EvalWorkers)
		if err := es.Load(ctx, tpc.RelationName, d.Parts[i]); err != nil {
			return nil, err
		}
		sites[i] = transport.NewLocalSite(es)
	}
	cat, err := d.Catalog(n)
	if err != nil {
		return nil, err
	}
	coord, err := core.New(sites, cat, net)
	if err != nil {
		return nil, err
	}
	coord.SetMergeWorkers(EvalWorkers)
	return &Cluster{Coord: coord, Sites: sites, Catalog: cat}, nil
}

// TwoPhaseQuery builds the experiments' workload query: two GMDJ operators,
// each computing a COUNT and an AVG (as in Sect. 5.1), grouped on the given
// attribute. With dependent=true the second operator's condition references
// the first operator's average (the correlated, non-coalescible shape used
// by the group-reduction, sync-reduction and combined experiments); with
// dependent=false the second condition is independent (the coalescible shape
// of the coalescing experiment).
func TwoPhaseQuery(attr string, dependent bool) gmdj.Query {
	link := fmt.Sprintf("B.%s = R.%s", attr, attr)
	second := link + " && R.Discount >= 0.05"
	if dependent {
		second = link + " && R.ExtendedPrice >= B.avg1"
	}
	return gmdj.Query{
		Base: gmdj.BaseQuery{Detail: tpc.RelationName, Cols: []string{attr}},
		Ops: []gmdj.Operator{
			{Detail: tpc.RelationName, Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{
					{Func: agg.Count, As: "cnt1"},
					{Func: agg.Avg, Arg: "ExtendedPrice", As: "avg1"},
				},
				Cond: expr.MustParse(link),
			}}},
			{Detail: tpc.RelationName, Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{
					{Func: agg.Count, As: "cnt2"},
					{Func: agg.Avg, Arg: "Quantity", As: "avg2"},
				},
				Cond: expr.MustParse(second),
			}}},
		},
	}
}

// HighCardAttr is the high-cardinality grouping attribute (Customer.Name in
// the paper, 100 000 unique values, partition-aligned).
const HighCardAttr = "CustName"

// LowCardAlignedAttr is the low-cardinality partition-aligned attribute used
// by the sync-reduction low-cardinality experiment (2 000–4 000 values).
const LowCardAlignedAttr = "CityKey"

// LowCardAttr is the low-cardinality, deliberately non-aligned attribute
// used by the coalescing low-cardinality experiment.
const LowCardAttr = "Clerk"

// Row is one measured point of an experiment series.
type Row struct {
	Series    string
	X         int // participating sites (speed-up) or scale factor (scale-up)
	Time      time.Duration
	Bytes     int
	BytesDown int
	BytesUp   int
	Rows      int
	RowsDown  int
	RowsUp    int
	Groups    int
	Rounds    int
	// Workers is the evaluation parallelism in force when the point was
	// measured (EvalWorkers: 0 = auto, 1 = sequential), so series taken at
	// different parallelism are distinguishable in the JSON export.
	Workers     int
	SiteTime    time.Duration
	CoordTime   time.Duration
	CommTime    time.Duration
	RoundDetail []RoundRow
	// Summary carries the p50/p95/max distribution figures (per-call site
	// compute and message sizes, per-round sync-merge time) into the -json
	// export, so latency-shape regressions show up even when totals hold.
	Summary stats.Summary
	// Plan identifies the compiled plan the point was measured under:
	// fingerprint, mode, applied rules, and the cost model's estimate.
	Plan RowPlan
	// Profile aggregates the site-side breakdowns the profiler shipped back
	// with each call, so bench artifacts expose where site time went without
	// a separate profiling run.
	Profile RowProfile
}

// RowProfile is the query-wide aggregate of the per-call SiteBreakdowns on a
// measured Row: summed site evaluation time and scan/segment/codec counters,
// plus the widest parallel scan seen at any site.
type RowProfile struct {
	QueryID       string
	SiteEval      time.Duration
	RowsScanned   int64
	SegCacheReads int64
	SegDiskReads  int64
	SegRowsLoaded int64
	CodecBytes    int64
	Blocks        int64
	MaxWorkers    int
}

// RowPlan is the planner's identity record on a measured Row: which plan ran
// (fingerprint + rules) and what the cost model predicted for it, so bench
// artifacts tie measurements back to planner decisions.
type RowPlan struct {
	Fingerprint  string
	Mode         string
	Rules        []string
	EstRounds    int
	EstBytesDown int64
	EstBytesUp   int64
}

// RoundRow is the per-synchronization-round traffic breakdown of a Row. It
// flows into skalla-bench's -json export, so wire-efficiency regressions show
// up per round rather than hiding in the query totals.
type RoundRow struct {
	Name          string
	BytesDown     int
	BytesUp       int
	RowsDown      int
	RowsUp        int
	BytesPerGroup float64 // upward bytes per final result group; 0 when no groups
	// EstBytesDown/Up are the cost model's predictions for the round, so the
	// model's calibration is visible next to each measurement.
	EstBytesDown int64
	EstBytesUp   int64
}

// measure runs one query under the given options and folds the metrics into
// a Row.
func measure(ctx context.Context, c *Cluster, q gmdj.Query, opts plan.Options, series string, x int) (Row, error) {
	res, err := c.Coord.Execute(ctx, q, opts)
	if err != nil {
		return Row{}, err
	}
	return foldRow(res, series, x), nil
}

// measureWith is measure under a rule selection instead of the legacy
// switches.
func measureWith(ctx context.Context, c *Cluster, q gmdj.Query, sel plan.Selection, series string, x int) (Row, error) {
	res, err := c.Coord.ExecuteWith(ctx, q, sel)
	if err != nil {
		return Row{}, err
	}
	return foldRow(res, series, x), nil
}

// foldRow folds one execution's metrics and plan into a Row.
func foldRow(res *core.Result, series string, x int) Row {
	m := res.Metrics
	groups := res.Rel.Len()
	rowsDown, rowsUp := 0, 0
	detail := make([]RoundRow, 0, len(m.Rounds))
	for i := range m.Rounds {
		r := &m.Rounds[i]
		rowsDown += r.RowsDown()
		rowsUp += r.RowsUp()
		rr := RoundRow{
			Name:      r.Name,
			BytesDown: r.BytesDown(),
			BytesUp:   r.BytesUp(),
			RowsDown:  r.RowsDown(),
			RowsUp:    r.RowsUp(),
		}
		if groups > 0 {
			rr.BytesPerGroup = float64(rr.BytesUp) / float64(groups)
		}
		if i < len(res.Plan.Estimate.PerRound) {
			re := res.Plan.Estimate.PerRound[i]
			rr.EstBytesDown = re.BytesDown
			rr.EstBytesUp = re.BytesUp
		}
		detail = append(detail, rr)
	}
	return Row{
		Series:      series,
		X:           x,
		Time:        m.ResponseTime(),
		Bytes:       m.TotalBytes(),
		BytesDown:   m.TotalBytesDown(),
		BytesUp:     m.TotalBytesUp(),
		Rows:        m.TotalRows(),
		RowsDown:    rowsDown,
		RowsUp:      rowsUp,
		Groups:      groups,
		Rounds:      m.NumRounds(),
		Workers:     EvalWorkers,
		SiteTime:    m.SiteTime(),
		CoordTime:   m.CoordTime(),
		CommTime:    m.CommTime(),
		RoundDetail: detail,
		Summary:     m.Summary(),
		Plan: RowPlan{
			Fingerprint:  res.Plan.Fingerprint,
			Mode:         res.Plan.Mode,
			Rules:        res.Plan.Rules,
			EstRounds:    res.Plan.Estimate.Rounds,
			EstBytesDown: res.Plan.Estimate.BytesDown,
			EstBytesUp:   res.Plan.Estimate.BytesUp,
		},
		Profile: foldProfile(res.Profile),
	}
}

// foldProfile aggregates a query profile's site breakdowns into a RowProfile.
// Failed (retried) attempts are skipped: their successor re-does the work, and
// counting both would overstate site cost the same way double-counting their
// bytes would overstate traffic.
func foldProfile(p *obs.QueryProfile) RowProfile {
	if p == nil {
		return RowProfile{}
	}
	rp := RowProfile{QueryID: p.QueryID}
	for i := range p.Rounds {
		for _, c := range p.Rounds[i].Calls {
			if c.Failed || c.Breakdown == nil {
				continue
			}
			b := c.Breakdown
			rp.SiteEval += time.Duration(b.EvalNS)
			rp.RowsScanned += b.RowsScanned
			rp.SegCacheReads += b.SegCacheReads
			rp.SegDiskReads += b.SegDiskReads
			rp.SegRowsLoaded += b.SegRowsLoaded
			rp.CodecBytes += b.CodecBytes
			rp.Blocks += b.Blocks
			if b.Workers > rp.MaxWorkers {
				rp.MaxWorkers = b.Workers
			}
		}
	}
	return rp
}

// SpeedUp runs one query/options pair over 1..maxSites participating sites
// of a fixed dataset (the setup of Sect. 5.2) and returns one Row per point.
func SpeedUp(ctx context.Context, d *tpc.Dataset, q gmdj.Query, opts plan.Options, series string, maxSites int, net stats.NetModel) ([]Row, error) {
	var rows []Row
	for n := 1; n <= maxSites; n++ {
		c, err := NewTPCCluster(ctx, d, n, net)
		if err != nil {
			return nil, err
		}
		r, err := measure(ctx, c, q, opts, series, n)
		if err != nil {
			return nil, fmt.Errorf("bench: %s at %d sites: %w", series, n, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// SpeedUpWith is SpeedUp under a rule selection instead of the legacy
// switches.
func SpeedUpWith(ctx context.Context, d *tpc.Dataset, q gmdj.Query, sel plan.Selection, series string, maxSites int, net stats.NetModel) ([]Row, error) {
	var rows []Row
	for n := 1; n <= maxSites; n++ {
		c, err := NewTPCCluster(ctx, d, n, net)
		if err != nil {
			return nil, err
		}
		r, err := measureWith(ctx, c, q, sel, series, n)
		if err != nil {
			return nil, fmt.Errorf("bench: %s at %d sites: %w", series, n, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// PlanModes compares planner modes on the paper's Example 1 workload query
// (the dependent two-operator query on the high-cardinality partition-
// aligned attribute): baseline, all rules, and the cost-model-driven auto
// mode. The exported rows carry fingerprints, rule lists, and estimated vs.
// actual per-round bytes, so the planner's choices — and the cost model's
// calibration — land in the bench artifacts.
func PlanModes(ctx context.Context, d *tpc.Dataset, maxSites int, net stats.NetModel) ([]Row, error) {
	q := TwoPhaseQuery(HighCardAttr, true)
	var out []Row
	for _, v := range []struct {
		series string
		sel    plan.Selection
	}{
		{"mode/none", plan.SelectNone()},
		{"mode/all", plan.SelectAll()},
		{"mode/auto", plan.SelectAuto()},
	} {
		rows, err := SpeedUpWith(ctx, d, q, v.sel, v.series, maxSites, net)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// Fig2 reproduces the group-reduction experiment (Fig. 2): the dependent
// two-operator query on the high-cardinality partition-aligned attribute,
// with no reduction, site-side (distribution-independent) reduction,
// coordinator-side (distribution-aware) reduction, and both. The paper plots
// the first two; the coordinator-side series demonstrates the "would make
// the curves linear" analysis of Sect. 5.2.
func Fig2(ctx context.Context, d *tpc.Dataset, maxSites int, net stats.NetModel) ([]Row, error) {
	q := TwoPhaseQuery(HighCardAttr, true)
	variants := []struct {
		series string
		opts   plan.Options
	}{
		{"no-reduction", plan.None()},
		{"site-reduction", plan.Options{GroupReduceSite: true}},
		{"coord-reduction", plan.Options{GroupReduceCoord: true}},
		{"both-reductions", plan.Options{GroupReduceSite: true, GroupReduceCoord: true}},
	}
	var out []Row
	for _, v := range variants {
		rows, err := SpeedUp(ctx, d, q, v.opts, v.series, maxSites, net)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// Fig3 reproduces the coalescing experiment (Fig. 3): the independent
// two-operator query, coalesced vs. not, on the high-cardinality attribute
// (left panel) and the low-cardinality attribute (right panel).
func Fig3(ctx context.Context, d *tpc.Dataset, maxSites int, net stats.NetModel) ([]Row, error) {
	var out []Row
	for _, card := range []struct {
		label string
		attr  string
	}{{"high", HighCardAttr}, {"low", LowCardAttr}} {
		q := TwoPhaseQuery(card.attr, false)
		for _, v := range []struct {
			series string
			opts   plan.Options
		}{
			{card.label + "/non-coalesced", plan.None()},
			{card.label + "/coalesced", plan.Options{Coalesce: true}},
		} {
			rows, err := SpeedUp(ctx, d, q, v.opts, v.series, maxSites, net)
			if err != nil {
				return nil, err
			}
			out = append(out, rows...)
		}
	}
	return out, nil
}

// Fig4 reproduces the synchronization-reduction experiment (Fig. 4): the
// dependent (non-coalescible) query with and without sync reduction, on the
// high-cardinality attribute (left) and the low-cardinality partition-
// aligned attribute (right).
func Fig4(ctx context.Context, d *tpc.Dataset, maxSites int, net stats.NetModel) ([]Row, error) {
	var out []Row
	for _, card := range []struct {
		label string
		attr  string
	}{{"high", HighCardAttr}, {"low", LowCardAlignedAttr}} {
		q := TwoPhaseQuery(card.attr, true)
		for _, v := range []struct {
			series string
			opts   plan.Options
		}{
			{card.label + "/no-sync-reduction", plan.None()},
			{card.label + "/sync-reduction", plan.Options{SyncReduce: true}},
		} {
			rows, err := SpeedUp(ctx, d, q, v.opts, v.series, maxSites, net)
			if err != nil {
				return nil, err
			}
			out = append(out, rows...)
		}
	}
	return out, nil
}

// Fig5 reproduces the scale-up experiment (Fig. 5): four sites, per-site
// data scaled ×1..×maxScale, combined-reductions query with all
// optimizations vs. none. When constantGroups is true the group count is
// held fixed while the data grows (the Sect. 5.3 variant); otherwise groups
// grow linearly with the data. The optimized rows carry the site /
// coordinator / communication breakdown of the right panel.
func Fig5(ctx context.Context, base tpc.Config, numSites, maxScale int, constantGroups bool, net stats.NetModel) ([]Row, error) {
	q := TwoPhaseQuery(HighCardAttr, true)
	var out []Row
	for s := 1; s <= maxScale; s++ {
		cfg := base
		cfg.Rows = base.Rows * s
		if !constantGroups {
			cfg.Customers = base.Customers * s
		}
		d, err := tpc.Generate(cfg, numSites)
		if err != nil {
			return nil, err
		}
		c, err := NewTPCCluster(ctx, d, numSites, net)
		if err != nil {
			return nil, err
		}
		unopt, err := measure(ctx, c, q, plan.None(), "unoptimized", s)
		if err != nil {
			return nil, err
		}
		opt, err := measure(ctx, c, q, plan.All(), "optimized", s)
		if err != nil {
			return nil, err
		}
		out = append(out, unopt, opt)
	}
	return out, nil
}

// FormulaCheck is the Sect. 5.2 analytic result: the proportion of groups
// transferred with site-side group reduction versus without is
// (2c + 2n + 1)/(4n + 1), where n is the number of sites, g the number of
// groups per site, and c the average fraction of a site's groups returned
// per grouping-variable round. The paper reports the formula matching the
// measurements within 5%.
type FormulaCheck struct {
	N         int
	C         float64
	Measured  float64 // rows(with reduction) / rows(without)
	Predicted float64 // (2c + 2n + 1) / (4n + 1)
}

// RelError returns |measured - predicted| / predicted.
func (f FormulaCheck) RelError() float64 {
	if f.Predicted == 0 {
		return 0
	}
	d := f.Measured - f.Predicted
	if d < 0 {
		d = -d
	}
	return d / f.Predicted
}

// Fig2Formula measures the group-transfer ratio at n sites and evaluates the
// analytic formula against it.
func Fig2Formula(ctx context.Context, d *tpc.Dataset, n int, net stats.NetModel) (FormulaCheck, error) {
	q := TwoPhaseQuery(HighCardAttr, true)
	c, err := NewTPCCluster(ctx, d, n, net)
	if err != nil {
		return FormulaCheck{}, err
	}
	base, err := measure(ctx, c, q, plan.None(), "none", n)
	if err != nil {
		return FormulaCheck{}, err
	}
	red, err := measure(ctx, c, q, plan.Options{GroupReduceSite: true}, "site", n)
	if err != nil {
		return FormulaCheck{}, err
	}
	// g = groups per site = |Q| / n (CustName is partition-aligned, so the
	// groups divide evenly across the participating sites).
	gTotal := float64(red.Groups)
	gSite := gTotal / float64(n)
	// The reduced run's sites→coordinator rows are: gTotal from the base
	// round, plus the guarded H rows of the two operator rounds. c is the
	// average fraction of a site's g groups returned per operator round.
	mdUp := float64(red.RowsUp) - gTotal
	cFrac := mdUp / (2 * float64(n) * gSite)
	return FormulaCheck{
		N:         n,
		C:         cFrac,
		Measured:  float64(red.Rows) / float64(base.Rows),
		Predicted: (2*cFrac + 2*float64(n) + 1) / (4*float64(n) + 1),
	}, nil
}
