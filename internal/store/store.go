// Package store implements a disk-backed, segmented table for Skalla sites.
// The paper's local warehouses hold gigabytes of flow records — far more
// than fits in memory — so the site engine scans detail relations through
// the RowSource interface rather than materializing them: a Table splits its
// rows into fixed-size segments on disk (the relation wire codec's
// column-major format, one frame per segment) and streams them through a
// small decoded-segment cache, keeping scan memory bounded by (cache size ×
// segment rows) regardless of table size. Segments written by earlier
// versions as gob files (.gob extension) remain readable.
package store

import (
	"bufio"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/relation"
)

// DefaultSegmentRows is the default segment granularity.
const DefaultSegmentRows = 4096

// manifestName is the table descriptor file inside the table directory.
const manifestName = "table.json"

// tableManifest is the persisted table metadata.
type tableManifest struct {
	Name        string          `json:"name"`
	Schema      relation.Schema `json:"schema"`
	SegmentRows int             `json:"segmentRows"`
	Segments    []segmentMeta   `json:"segments"`
}

type segmentMeta struct {
	File string `json:"file"`
	Rows int    `json:"rows"`
}

// Table is a disk-backed relation. It implements the engine's RowSource
// contract: Schema/Scan/Len. Tables are append-only; Append buffers rows and
// Flush (or Close) seals the current segment.
type Table struct {
	mu          sync.Mutex
	dir         string
	name        string
	schema      relation.Schema
	segmentRows int
	segments    []segmentMeta
	buf         []relation.Tuple
	total       int

	cache *segmentCache
}

// Create initializes a new table directory (which must not already contain a
// table).
func Create(dir, name string, schema relation.Schema, segmentRows int) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if segmentRows <= 0 {
		segmentRows = DefaultSegmentRows
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("store: %s already contains a table", dir)
	}
	t := &Table{
		dir: dir, name: name, schema: schema.Clone(),
		segmentRows: segmentRows,
		cache:       newSegmentCache(4),
	}
	if err := t.writeManifest(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing table directory.
func Open(dir string) (*Table, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m tableManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: %s: %w", dir, err)
	}
	if err := m.Schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		dir: dir, name: m.Name, schema: m.Schema,
		segmentRows: m.SegmentRows, segments: m.Segments,
		cache: newSegmentCache(4),
	}
	for _, seg := range m.Segments {
		t.total += seg.Rows
	}
	return t, nil
}

// CreateFrom builds a table from a materialized relation (the conversion
// path for tpcgen output).
func CreateFrom(dir, name string, rel *relation.Relation, segmentRows int) (*Table, error) {
	t, err := Create(dir, name, rel.Schema, segmentRows)
	if err != nil {
		return nil, err
	}
	for _, row := range rel.Tuples {
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	if err := t.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Dir returns the table directory.
func (t *Table) Dir() string { return t.dir }

// Schema implements the RowSource contract.
func (t *Table) Schema() relation.Schema { return t.schema }

// Len implements the RowSource contract (buffered rows included).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total + len(t.buf)
}

// NumSegments returns the sealed segment count.
func (t *Table) NumSegments() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.segments)
}

// Append adds one row, sealing a segment when the buffer fills.
func (t *Table) Append(row relation.Tuple) error {
	if len(row) != len(t.schema) {
		return fmt.Errorf("store: row arity %d does not match schema %s", len(row), t.schema)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, row)
	if len(t.buf) >= t.segmentRows {
		return t.sealLocked()
	}
	return nil
}

// Flush seals any buffered rows into a segment and persists the manifest.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) > 0 {
		if err := t.sealLocked(); err != nil {
			return err
		}
	}
	return t.writeManifestLocked()
}

func (t *Table) sealLocked() error {
	file := fmt.Sprintf("seg%05d.seg", len(t.segments))
	f, err := os.Create(filepath.Join(t.dir, file))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	seg := &relation.Relation{Schema: t.schema, Tuples: t.buf}
	if err := relation.NewEncoder(bw).Encode(seg); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	t.segments = append(t.segments, segmentMeta{File: file, Rows: len(t.buf)})
	t.total += len(t.buf)
	t.buf = nil
	return t.writeManifestLocked()
}

func (t *Table) writeManifest() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.writeManifestLocked()
}

func (t *Table) writeManifestLocked() error {
	m := tableManifest{Name: t.name, Schema: t.schema, SegmentRows: t.segmentRows, Segments: t.segments}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(t.dir, manifestName), append(data, '\n'), 0o644)
}

// Scan implements the RowSource contract: it streams every row through fn in
// segment order, decoding one segment at a time (with a small LRU of decoded
// segments for re-scans). fn errors abort the scan.
func (t *Table) Scan(fn func(relation.Tuple) error) error { return t.scanWith(nil, fn) }

func (t *Table) scanWith(rec *obs.SiteRecorder, fn func(relation.Tuple) error) error {
	t.mu.Lock()
	segs := append([]segmentMeta{}, t.segments...)
	buffered := append([]relation.Tuple{}, t.buf...)
	t.mu.Unlock()
	for i, seg := range segs {
		rows, err := t.loadSegment(rec, i, seg)
		if err != nil {
			return err
		}
		for _, row := range rows {
			if err := fn(row); err != nil {
				return err
			}
		}
	}
	for _, row := range buffered {
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

// Split implements gmdj.SplittableSource: contiguous segment-aligned spans of
// near-equal row mass, so no segment is decoded by more than one worker and
// the concatenation of the shard scans is exactly one full Scan (sealed
// segments in order, then the buffered tail). Returns nil when the table has
// too few units to shard.
func (t *Table) Split(n int) []gmdj.RowSource { return t.splitWith(nil, n) }

func (t *Table) splitWith(rec *obs.SiteRecorder, n int) []gmdj.RowSource {
	t.mu.Lock()
	segs := append([]segmentMeta{}, t.segments...)
	buffered := append([]relation.Tuple{}, t.buf...)
	t.mu.Unlock()

	units := len(segs)
	if len(buffered) > 0 {
		units++
	}
	if n > units {
		n = units
	}
	if n <= 1 {
		return nil
	}

	total := len(buffered)
	for _, s := range segs {
		total += s.Rows
	}

	out := make([]gmdj.RowSource, 0, n)
	next := 0 // next unassigned segment ordinal
	done := 0 // rows assigned so far
	for w := 0; w < n; w++ {
		span := tableSpan{t: t, first: next, rec: rec}
		// Fill to this shard's proportional row boundary, but never take a
		// unit that a remaining shard needs to stay non-empty.
		bound := total * (w + 1) / n
		for next < len(segs) {
			unitsLeft := len(segs) - next
			if len(buffered) > 0 {
				unitsLeft++
			}
			if unitsLeft <= n-w-1 {
				break
			}
			if len(span.segs) > 0 && done >= bound {
				break
			}
			span.segs = append(span.segs, segs[next])
			span.rows += segs[next].Rows
			done += segs[next].Rows
			next++
		}
		if w == n-1 && len(buffered) > 0 {
			span.buf = buffered
			span.rows += len(buffered)
		}
		out = append(out, span)
	}
	return out
}

// tableSpan is one shard of a table scan: a contiguous run of sealed
// segments, optionally followed by the buffered-tail snapshot (last shard
// only). Spans share the parent's segment cache, which is mutex-protected,
// so concurrent shard scans are safe.
type tableSpan struct {
	t     *Table
	segs  []segmentMeta
	first int // ordinal of segs[0] in the parent table
	buf   []relation.Tuple
	rows  int
	rec   *obs.SiteRecorder
}

// Schema implements the RowSource contract.
func (s tableSpan) Schema() relation.Schema { return s.t.schema }

// Len implements the RowSource contract.
func (s tableSpan) Len() int { return s.rows }

// Scan implements the RowSource contract over the span's segments.
func (s tableSpan) Scan(fn func(relation.Tuple) error) error {
	for i, seg := range s.segs {
		rows, err := s.t.loadSegment(s.rec, s.first+i, seg)
		if err != nil {
			return err
		}
		for _, row := range rows {
			if err := fn(row); err != nil {
				return err
			}
		}
	}
	for _, row := range s.buf {
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

// Materialize reads the whole table into memory (tests and small tables).
func (t *Table) Materialize() (*relation.Relation, error) {
	out := relation.New(t.schema)
	err := t.Scan(func(row relation.Tuple) error {
		out.Tuples = append(out.Tuples, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (t *Table) loadSegment(rec *obs.SiteRecorder, ord int, seg segmentMeta) ([]relation.Tuple, error) {
	if rows, ok := t.cache.get(ord); ok {
		obs.StoreSegmentReads.With("cache").Inc()
		rec.AddSegRead(false, 0)
		return rows, nil
	}
	obs.StoreSegmentReads.With("disk").Inc()
	f, err := os.Open(filepath.Join(t.dir, seg.File))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []relation.Tuple
	if filepath.Ext(seg.File) == ".gob" {
		// Legacy segment format: a bare gob-encoded []Tuple.
		if err := gob.NewDecoder(bufio.NewReader(f)).Decode(&rows); err != nil {
			return nil, fmt.Errorf("store: segment %s: %w", seg.File, err)
		}
	} else {
		rel, err := relation.NewDecoder(bufio.NewReader(f)).Decode()
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: %w", seg.File, err)
		}
		if !rel.Schema.Equal(t.schema) {
			return nil, fmt.Errorf("store: segment %s schema %s does not match table schema %s",
				seg.File, rel.Schema, t.schema)
		}
		rows = rel.Tuples
	}
	if len(rows) != seg.Rows {
		return nil, fmt.Errorf("store: segment %s has %d rows, manifest says %d", seg.File, len(rows), seg.Rows)
	}
	obs.StoreSegmentRows.Add(int64(len(rows)))
	rec.AddSegRead(true, int64(len(rows)))
	t.cache.put(ord, rows)
	return rows, nil
}

// Recorded returns a view of the table that charges segment reads to rec in
// addition to the process-wide counters. The engine wraps detail sources this
// way per request, so /debug/queries profiles carry per-query segment I/O;
// the underlying table (and its segment cache) is shared as usual.
func (t *Table) Recorded(rec *obs.SiteRecorder) gmdj.RowSource {
	if rec == nil {
		return t
	}
	return recordedTable{t: t, rec: rec}
}

// recordedTable binds a Table to one request's recorder.
type recordedTable struct {
	t   *Table
	rec *obs.SiteRecorder
}

// Schema implements the RowSource contract.
func (r recordedTable) Schema() relation.Schema { return r.t.schema }

// Len implements the RowSource contract.
func (r recordedTable) Len() int { return r.t.Len() }

// Scan implements the RowSource contract, charging segment reads to the
// recorder.
func (r recordedTable) Scan(fn func(relation.Tuple) error) error { return r.t.scanWith(r.rec, fn) }

// Split implements gmdj.SplittableSource; every shard inherits the recorder.
func (r recordedTable) Split(n int) []gmdj.RowSource { return r.t.splitWith(r.rec, n) }

// segmentCache is a tiny LRU of decoded segments, keyed by segment ordinal:
// scans hit it once per segment per pass, and integer keys keep those lookups
// off the string-hashing path (and satisfy the stringkey lint).
type segmentCache struct {
	mu    sync.Mutex
	cap   int
	order []int
	data  map[int][]relation.Tuple
}

func newSegmentCache(capacity int) *segmentCache {
	return &segmentCache{cap: capacity, data: make(map[int][]relation.Tuple)}
}

func (c *segmentCache) get(key int) ([]relation.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows, ok := c.data[key]
	if ok {
		c.touch(key)
	}
	return rows, ok
}

func (c *segmentCache) put(key int, rows []relation.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.data[key]; !exists && len(c.data) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.data, oldest)
	}
	c.data[key] = rows
	c.touch(key)
}

func (c *segmentCache) touch(key int) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, key)
}
