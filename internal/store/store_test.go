package store

import (
	"encoding/gob"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

func storeSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindString},
	)
}

func row(k int64, v string) relation.Tuple {
	return relation.Tuple{relation.NewInt(k), relation.NewString(v)}
}

func TestCreateAppendScan(t *testing.T) {
	dir := t.TempDir()
	tbl, err := Create(dir, "T", storeSchema(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := tbl.Append(row(i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	// 10 rows at 3/segment: 3 sealed segments + 1 buffered row.
	if tbl.NumSegments() != 3 || tbl.Len() != 10 {
		t.Fatalf("segments=%d len=%d", tbl.NumSegments(), tbl.Len())
	}
	// Scan sees sealed + buffered rows in order.
	var got []int64
	if err := tbl.Scan(func(r relation.Tuple) error {
		got = append(got, r[0].Int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, k := range got {
		if k != int64(i) {
			t.Fatalf("scan order: %v", got)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if tbl.NumSegments() != 4 {
		t.Errorf("after flush: %d segments", tbl.NumSegments())
	}
}

func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := relation.New(storeSchema())
	for i := int64(0); i < 25; i++ {
		src.MustAppend(row(i, "v"))
	}
	if _, err := CreateFrom(dir, "T", src, 8); err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "T" || tbl.Len() != 25 || tbl.Dir() != dir {
		t.Errorf("reopened: name=%q len=%d", tbl.Name(), tbl.Len())
	}
	if !tbl.Schema().Equal(storeSchema()) {
		t.Errorf("schema = %s", tbl.Schema())
	}
	got, err := tbl.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualMultiset(src) {
		t.Error("round trip changed rows")
	}
}

func TestScanAbortsOnError(t *testing.T) {
	dir := t.TempDir()
	src := relation.New(storeSchema())
	for i := int64(0); i < 10; i++ {
		src.MustAppend(row(i, "v"))
	}
	tbl, err := CreateFrom(dir, "T", src, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = tbl.Scan(func(relation.Tuple) error {
		n++
		if n == 3 {
			return os.ErrClosed
		}
		return nil
	})
	if err == nil || n != 3 {
		t.Errorf("scan abort: n=%d err=%v", n, err)
	}
}

func TestSegmentCacheEviction(t *testing.T) {
	dir := t.TempDir()
	src := relation.New(storeSchema())
	for i := int64(0); i < 100; i++ {
		src.MustAppend(row(i, "v"))
	}
	tbl, err := CreateFrom(dir, "T", src, 10) // 10 segments > cache cap 4
	if err != nil {
		t.Fatal(err)
	}
	// Repeated full scans exercise eviction; results stay correct.
	for pass := 0; pass < 3; pass++ {
		count := 0
		if err := tbl.Scan(func(relation.Tuple) error { count++; return nil }); err != nil {
			t.Fatal(err)
		}
		if count != 100 {
			t.Fatalf("pass %d: %d rows", pass, count)
		}
	}
	if len(tbl.cache.data) > 4 {
		t.Errorf("cache holds %d segments, cap 4", len(tbl.cache.data))
	}
}

// Tables written by earlier versions used bare gob-encoded []Tuple segments
// with a .gob extension; they must stay readable alongside codec segments.
func TestLegacyGobSegmentFallback(t *testing.T) {
	dir := t.TempDir()
	tbl, err := Create(dir, "T", storeSchema(), 4)
	if err != nil {
		t.Fatal(err)
	}
	legacy := []relation.Tuple{row(100, "old"), row(101, "old")}
	f, err := os.Create(filepath.Join(dir, "seg00000.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(legacy); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tbl.segments = append(tbl.segments, segmentMeta{File: "seg00000.gob", Rows: len(legacy)})
	tbl.total += len(legacy)
	if err := tbl.writeManifest(); err != nil {
		t.Fatal(err)
	}
	// New rows seal into codec segments next to the legacy one.
	for i := int64(0); i < 4; i++ {
		if err := tbl.Append(row(i, "new")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 6 {
		t.Fatalf("materialized %d rows, want 6", got.Len())
	}
	if got.Tuples[0][1].Str != "old" || got.Tuples[2][1].Str != "new" {
		t.Fatalf("segment order or content wrong: %v", got.Tuples)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, "T", relation.Schema{{Name: "", Kind: relation.KindInt}}, 4); err == nil {
		t.Error("invalid schema must error")
	}
	if _, err := Create(dir, "T", storeSchema(), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, "T2", storeSchema(), 4); err == nil {
		t.Error("double create must error")
	}
	tbl, _ := Open(dir)
	if err := tbl.Append(relation.Tuple{relation.NewInt(1)}); err == nil {
		t.Error("arity mismatch must error")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("open without manifest must error")
	}
	// Corrupt manifest.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("corrupt manifest must error")
	}
	// Corrupt segment.
	cdir := t.TempDir()
	src := relation.New(storeSchema())
	src.MustAppend(row(1, "a"))
	if _, err := CreateFrom(cdir, "T", src, 1); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cdir, "seg00000.seg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	ct, err := Open(cdir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Scan(func(relation.Tuple) error { return nil }); err == nil {
		t.Error("corrupt segment must error on scan")
	}
	// Default segment size applies.
	dt, err := Create(t.TempDir(), "T", storeSchema(), 0)
	if err != nil || dt.segmentRows != DefaultSegmentRows {
		t.Errorf("default segment rows: %d, %v", dt.segmentRows, err)
	}
}

// TestSplitSegmentAligned checks the gmdj.SplittableSource contract: shards
// are segment-aligned, cover every row exactly once in scan order, and the
// buffered tail lands on the last shard.
func TestSplitSegmentAligned(t *testing.T) {
	var _ gmdj.SplittableSource = (*Table)(nil)
	dir := t.TempDir()
	tbl, err := Create(dir, "T", storeSchema(), 4)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 50 // 12 sealed segments of 4 + 2 buffered rows
	for i := int64(0); i < rows; i++ {
		if err := tbl.Append(row(i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{2, 3, 5, 13, 100} {
		shards := tbl.Split(n)
		if len(shards) < 2 {
			t.Fatalf("Split(%d) declined", n)
		}
		var got []int64
		for _, sh := range shards {
			count := 0
			if err := sh.Scan(func(r relation.Tuple) error {
				got = append(got, r[0].Int)
				count++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if count != sh.Len() {
				t.Fatalf("Split(%d): shard Len %d but scanned %d", n, sh.Len(), count)
			}
		}
		if len(got) != rows {
			t.Fatalf("Split(%d): %d rows, want %d", n, len(got), rows)
		}
		for i, k := range got {
			if k != int64(i) {
				t.Fatalf("Split(%d): out of order at %d: %v", n, i, k)
			}
		}
	}
	// Single-segment tables decline.
	small, err := Create(t.TempDir(), "S", storeSchema(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Append(row(1, "y")); err != nil {
		t.Fatal(err)
	}
	if small.Split(4) != nil {
		t.Error("Split on a buffer-only table should decline")
	}
}

// TestSplitConcurrentScan scans every shard concurrently (as the parallel
// evaluator does) and checks each shard still sees its exact row range; the
// shared segment cache must tolerate the concurrency.
func TestSplitConcurrentScan(t *testing.T) {
	dir := t.TempDir()
	tbl, err := Create(dir, "T", storeSchema(), 8)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 400
	for i := int64(0); i < rows; i++ {
		if err := tbl.Append(row(i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	shards := tbl.Split(8)
	if len(shards) != 8 {
		t.Fatalf("Split(8) gave %d shards", len(shards))
	}
	got := make([][]int64, len(shards))
	var wg sync.WaitGroup
	for w, sh := range shards {
		wg.Add(1)
		go func(w int, sh gmdj.RowSource) {
			defer wg.Done()
			_ = sh.Scan(func(r relation.Tuple) error {
				got[w] = append(got[w], r[0].Int)
				return nil
			})
		}(w, sh)
	}
	wg.Wait()
	var all []int64
	for _, g := range got {
		all = append(all, g...)
	}
	if len(all) != rows {
		t.Fatalf("concurrent shard scans saw %d rows, want %d", len(all), rows)
	}
	for i, k := range all {
		if k != int64(i) {
			t.Fatalf("concurrent shard scans out of order at %d: %d", i, k)
		}
	}
}
