package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"skalla/internal/relation"
)

// QueryError is a statement failure reported by the server. Code carries the
// wire classification (see ErrorInfo.Code); "rejected" means the admission
// queue was full and the client should back off and resubmit.
type QueryError struct {
	Code    string
	Message string
}

func (e *QueryError) Error() string { return fmt.Sprintf("server: %s: %s", e.Code, e.Message) }

// defaultDialTimeout bounds Dial when the caller supplies no context.
const defaultDialTimeout = 10 * time.Second

// Client is one session against a query server. Statements on a session run
// sequentially (the mutex serializes them); open several clients for
// concurrent sessions.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// Dial opens a session, bounded by defaultDialTimeout. Use DialContext to
// control the deadline.
func Dial(addr string) (*Client, error) {
	//skallavet:allow ctxcall -- lifecycle root mirroring net.DialTimeout; DialContext is the context-threading variant
	ctx, cancel := context.WithTimeout(context.Background(), defaultDialTimeout)
	defer cancel()
	return DialContext(ctx, addr)
}

// DialContext opens a session under the context's deadline.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Close ends the session. It is safe to call while a Query is in flight —
// closing the connection unblocks the pending read, and the server treats the
// disconnect as abandonment, cancelling the statement (releasing its admission
// queue slot if it had not started executing). It deliberately does not take
// the statement mutex: conn is set once at dial time, and net.Conn.Close is
// safe against concurrent reads and writes.
func (c *Client) Close() error {
	return c.conn.Close()
}

// Query submits one statement and returns the result rows and execution
// stats. A server-reported failure is returned as a *QueryError; transport
// failures leave the session unusable (the protocol has no resynchronization
// — open a fresh session).
func (c *Client) Query(ctx context.Context, stmt string) (*relation.Relation, *ResultInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.conn, frameQuery, []byte(stmt)); err != nil {
		return nil, nil, fmt.Errorf("server: send: %w", err)
	}
	kind, payload, err := readFrame(c.br)
	if err != nil {
		return nil, nil, fmt.Errorf("server: receive: %w", err)
	}
	switch kind {
	case frameError:
		var info ErrorInfo
		if err := json.Unmarshal(payload, &info); err != nil {
			return nil, nil, fmt.Errorf("server: malformed error frame: %w", err)
		}
		return nil, nil, &QueryError{Code: info.Code, Message: info.Message}
	case frameResult:
		var info ResultInfo
		if err := json.Unmarshal(payload, &info); err != nil {
			return nil, nil, fmt.Errorf("server: malformed result frame: %w", err)
		}
		rel, err := relation.NewDecoder(c.br).Decode()
		if err != nil {
			return nil, nil, fmt.Errorf("server: receive rows: %w", err)
		}
		return rel, &info, nil
	default:
		return nil, nil, fmt.Errorf("server: unexpected frame kind 0x%02x", kind)
	}
}
