package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"skalla/internal/obs"
	"skalla/internal/relation"
)

var testSchema = relation.MustSchema(
	relation.Column{Name: "g", Kind: relation.KindInt},
	relation.Column{Name: "v", Kind: relation.KindString},
)

// echoHandler returns one row carrying the statement text and the context's
// query ID, so tests can check both routing and ID assignment.
func echoHandler(ctx context.Context, stmt string) (*Result, error) {
	rel := relation.New(testSchema)
	rel.MustAppend(relation.Tuple{relation.NewInt(int64(len(stmt))), relation.NewString(obs.QueryIDFrom(ctx))})
	return &Result{Rel: rel}, nil
}

func startServer(t *testing.T, h Handler) *Server {
	t.Helper()
	s, err := Serve(h, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestQueryRoundTrip(t *testing.T) {
	s := startServer(t, echoHandler)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for seq := 1; seq <= 3; seq++ {
		stmt := strings.Repeat("x", seq)
		rel, info, err := c.Query(context.Background(), stmt)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 1 || rel.Tuples[0][0].Int != int64(seq) {
			t.Fatalf("echo row = %v", rel.Tuples[0])
		}
		wantID := fmt.Sprintf("s1-%d", seq)
		if got := rel.Tuples[0][1].Str; got != wantID {
			t.Fatalf("handler saw query ID %q, want %q", got, wantID)
		}
		if info.QueryID != wantID || info.Rows != 1 {
			t.Fatalf("info = %+v", info)
		}
	}
}

func TestErrorCodes(t *testing.T) {
	s := startServer(t, func(ctx context.Context, stmt string) (*Result, error) {
		switch stmt {
		case "reject":
			return nil, Coded("rejected", errors.New("queue full"))
		case "budget":
			return nil, Coded("mem_budget", errors.New("over budget"))
		default:
			return nil, errors.New("boom")
		}
	})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for stmt, wantCode := range map[string]string{
		"reject": "rejected", "budget": "mem_budget", "other": "internal",
	} {
		_, _, err := c.Query(context.Background(), stmt)
		var qe *QueryError
		if !errors.As(err, &qe) || qe.Code != wantCode {
			t.Fatalf("Query(%q) error = %v, want code %q", stmt, err, wantCode)
		}
	}
}

func TestSessionSurvivesStatementError(t *testing.T) {
	s := startServer(t, func(ctx context.Context, stmt string) (*Result, error) {
		if stmt == "bad" {
			return nil, errors.New("boom")
		}
		return echoHandler(ctx, stmt)
	})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Query(context.Background(), "bad"); err == nil {
		t.Fatal("bad statement succeeded")
	}
	if _, _, err := c.Query(context.Background(), "ok"); err != nil {
		t.Fatalf("statement after failure: %v", err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	s := startServer(t, echoHandler)
	const sessions = 8
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for q := 0; q < 5; q++ {
				rel, _, err := c.Query(context.Background(), "hello")
				if err != nil {
					t.Error(err)
					return
				}
				if rel.Len() != 1 {
					t.Errorf("rows = %d", rel.Len())
				}
			}
		}()
	}
	wg.Wait()
}

// TestShutdownDrainsInflight covers the drain contract: a statement already
// evaluating finishes and its client gets the full result; a statement
// arriving during the drain is refused with code "shutdown"; Shutdown returns
// only after the in-flight statement completed.
func TestShutdownDrainsInflight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	s := startServer(t, func(ctx context.Context, stmt string) (*Result, error) {
		if stmt == "slow" {
			close(started)
			<-release
		}
		return echoHandler(ctx, stmt)
	})

	slow, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slowDone := make(chan error, 1)
	go func() {
		_, _, err := slow.Query(context.Background(), "slow")
		slowDone <- err
	}()
	<-started

	// A second session is already open when the drain begins. Dial alone only
	// proves the kernel completed the handshake — run one statement so the
	// session is established with the accept loop before the listener closes
	// (an unaccepted backlog connection is closed during drain, not refused).
	late, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if _, _, err := late.Query(context.Background(), "warm"); err != nil {
		t.Fatalf("establishing the second session: %v", err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Wait until the server is draining, then submit on the open session.
	for {
		s.mu.Lock()
		d := s.draining
		s.mu.Unlock()
		if d {
			break
		}
		time.Sleep(time.Millisecond)
	}
	_, _, err = late.Query(context.Background(), "late")
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Code != "shutdown" {
		t.Fatalf("query during drain = %v, want code shutdown", err)
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before in-flight query finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight query failed during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}

	// New sessions are refused after shutdown.
	if c, err := Dial(s.Addr()); err == nil {
		c.Close()
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestShutdownTimeoutCancelsEvaluation covers the bounded drain: a statement
// that outlives the drain window has its context canceled and Shutdown
// returns the deadline error instead of hanging.
func TestShutdownTimeoutCancelsEvaluation(t *testing.T) {
	started := make(chan struct{})
	s := startServer(t, func(ctx context.Context, stmt string) (*Result, error) {
		close(started)
		<-ctx.Done() // runs until shutdown cancels evaluation contexts
		return nil, ctx.Err()
	})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Query(context.Background(), "stuck")
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
}

func TestFrameBounds(t *testing.T) {
	var sb strings.Builder
	if err := writeFrame(&sb, frameQuery, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := readFrame(strings.NewReader(sb.String()))
	if err != nil || kind != frameQuery || string(payload) != "hi" {
		t.Fatalf("round trip = (0x%02x, %q, %v)", kind, payload, err)
	}
	// Oversized length prefix is rejected, not allocated.
	huge := string([]byte{frameQuery, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := readFrame(strings.NewReader(huge)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
