package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"skalla/internal/obs"
	"skalla/internal/relation"
)

// Result is what a Handler returns for one successful statement.
type Result struct {
	// Rel holds the result rows.
	Rel *relation.Relation
	// CacheHit reports whether a prepared plan was reused.
	CacheHit bool
	// Queued is the time spent in the admission queue.
	Queued time.Duration
}

// Handler evaluates one statement under the given context. The context
// carries the session's query ID (obs.QueryIDFrom), so evaluation profiles
// land in /debug/queries under the same identifier the client sees. Handlers
// are called concurrently from many sessions and must be safe for that.
type Handler func(ctx context.Context, stmt string) (*Result, error)

// CodedError attaches a wire error code (see ErrorInfo.Code) to an error.
// Handlers return it to classify failures for clients; any other error is
// reported with code "internal".
type CodedError struct {
	Code string
	Err  error
}

func (e *CodedError) Error() string { return e.Err.Error() }
func (e *CodedError) Unwrap() error { return e.Err }

// Coded wraps err with a wire error code.
func Coded(code string, err error) error { return &CodedError{Code: code, Err: err} }

// ErrShutdown is returned to statements that arrive while the server is
// draining; clients receive it with code "shutdown".
var ErrShutdown = errors.New("server: shutting down")

// Server accepts client sessions on a TCP listener and evaluates their
// statements through a Handler. Each connection is one session; statements on
// a session run sequentially (the protocol is one query frame, one response),
// while separate sessions run concurrently — bounded by the coordinator's
// admission control, not by the server.
type Server struct {
	h   Handler
	ln  net.Listener
	log *slog.Logger

	// baseCtx parents every statement's evaluation context; cancel fires when
	// shutdown gives up on draining, so stuck evaluations are interrupted.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	draining bool
	closed   bool
	conns    map[net.Conn]struct{}
	sessions int64 // session ID sequence

	wg       sync.WaitGroup // accept loop + session handlers
	inflight sync.WaitGroup // statements currently evaluating
}

// Serve starts a query server on addr ("host:port"; ":0" for an ephemeral
// port) and returns immediately. It is the convenience lifecycle root; use
// ServeContext to tie evaluations to an existing context tree.
func Serve(h Handler, addr string) (*Server, error) {
	//skallavet:allow ctxcall -- lifecycle root: ServeContext is the context-threading variant
	return ServeContext(context.Background(), h, addr)
}

// ServeContext is Serve under a parent context: every statement evaluates
// under a context derived from it.
func ServeContext(ctx context.Context, h Handler, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	baseCtx, cancel := context.WithCancel(ctx)
	s := &Server{
		h:       h,
		ln:      ln,
		log:     obs.Logger().With("component", "queryserver"),
		baseCtx: baseCtx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown drains the server: the listener closes (no new sessions),
// statements already evaluating run to completion, and statements arriving on
// open sessions are refused with code "shutdown". When the in-flight
// statements finish — or ctx expires first — evaluation contexts are
// canceled, every session connection is closed, and Shutdown returns ctx's
// error if the drain was cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.ln.Close()

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.log.Warn("shutdown drain cut short", "err", err)
	}

	s.cancel()
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Close shuts the server down immediately, without draining.
func (s *Server) Close() error {
	//skallavet:allow ctxcall -- lifecycle root: immediate shutdown needs an already-expired drain window
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil // the zero-length drain window is the point, not a failure
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.sessions++
		sess := s.sessions
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn, sess)
	}
}

func (s *Server) handle(conn net.Conn, sess int64) {
	defer s.wg.Done()
	log := s.log.With("session", sess, "remote", conn.RemoteAddr().String())
	obs.ServerSessions.Inc()
	obs.ServerActiveSessions.Add(1)
	log.Debug("session open")
	// sessCtx parents every statement this session evaluates; it is canceled
	// the moment the connection drops, so a statement parked in the
	// coordinator's admission queue releases its queue slot instead of
	// executing for a client that already went away.
	sessCtx, cancel := context.WithCancel(s.baseCtx)
	defer func() {
		cancel()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		obs.ServerActiveSessions.Add(-1)
		log.Debug("session closed")
	}()
	// Frames are read by a dedicated goroutine so a disconnect is noticed
	// while a statement is still evaluating (the protocol is one query frame,
	// one response — during evaluation the client sends nothing, so a read
	// completing early means EOF or a corrupt stream). The goroutine is
	// bounded by sessCtx and unblocked by the deferred conn.Close.
	type frame struct {
		kind    byte
		payload []byte
	}
	frames := make(chan frame)
	go func() {
		br := bufio.NewReader(conn)
		for {
			kind, payload, err := readFrame(br)
			if err != nil {
				cancel() // disconnect (or corrupt stream): release queued statements
				return
			}
			select {
			case frames <- frame{kind: kind, payload: payload}:
			case <-sessCtx.Done():
				return
			}
		}
	}()
	for seq := int64(1); ; seq++ {
		var f frame
		select {
		case f = <-frames:
		case <-sessCtx.Done():
			return // session ended or corrupt stream
		}
		if f.kind != frameQuery {
			log.Warn("unexpected frame kind", "kind", fmt.Sprintf("0x%02x", f.kind))
			return
		}
		qid := fmt.Sprintf("s%d-%d", sess, seq)
		if err := s.serveQuery(sessCtx, conn, qid, string(f.payload)); err != nil {
			log.Warn("response write failed", "query", qid, "err", err)
			return
		}
	}
}

// serveQuery evaluates one statement under the session's context and writes
// its response frames. The returned error is a connection-level write
// failure; evaluation failures are reported to the client in an error frame
// and are not errors here.
func (s *Server) serveQuery(ctx context.Context, conn net.Conn, qid, stmt string) error {
	s.mu.Lock()
	draining := s.draining
	if !draining {
		// Registering under the lock closes the race with Shutdown: a
		// statement is either counted before the drain snapshot or refused.
		s.inflight.Add(1)
	}
	s.mu.Unlock()
	if draining {
		obs.ServerQueries.With("shutdown").Inc()
		return writeJSONFrame(conn, frameError, ErrorInfo{Code: "shutdown", Message: ErrShutdown.Error()})
	}
	defer s.inflight.Done()

	ctx = obs.WithQueryID(ctx, qid)
	start := time.Now()
	res, err := s.h(ctx, stmt)
	if err != nil {
		info := ErrorInfo{Code: "internal", Message: err.Error()}
		var coded *CodedError
		if errors.As(err, &coded) {
			info.Code = coded.Code
		}
		switch info.Code {
		case "rejected":
			obs.ServerQueries.With("rejected").Inc()
		case "shutdown":
			obs.ServerQueries.With("shutdown").Inc()
		default:
			obs.ServerQueries.With("error").Inc()
		}
		return writeJSONFrame(conn, frameError, info)
	}
	obs.ServerQueries.With("ok").Inc()
	info := ResultInfo{
		QueryID:   qid,
		Rows:      res.Rel.Len(),
		ElapsedNS: (time.Since(start) - res.Queued).Nanoseconds(),
		QueueNS:   res.Queued.Nanoseconds(),
		CacheHit:  res.CacheHit,
	}
	if err := writeJSONFrame(conn, frameResult, info); err != nil {
		return err
	}
	return relation.NewEncoder(conn).Encode(res.Rel)
}
