// Package server exposes a Skalla coordinator as a long-lived multi-tenant
// query server: many concurrent client sessions over one TCP listener, each
// session submitting statements and receiving result rows plus execution
// stats. The wire protocol is deliberately small — one length-prefixed frame
// per message, with result rows streamed in the relation wire codec — so a
// thin client in any language can speak it.
//
// The package knows nothing about parsing or planning: the facade supplies a
// Handler that evaluates one statement (the statement grammars live in the
// root package, which this package must not import).
package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Frame kinds. A client sends a query frame and reads exactly one result or
// error frame back; a result frame is followed by the result rows as one
// relation wire-codec frame (see internal/relation).
const (
	frameQuery  = 0x01 // client → server: statement text
	frameResult = 0x81 // server → client: ResultInfo JSON, then codec frame
	frameError  = 0x82 // server → client: ErrorInfo JSON
)

// maxFramePayload bounds a control frame's payload (statement text or JSON
// envelope) so a corrupt length prefix cannot drive an unbounded allocation.
// Result rows are not subject to this bound: they travel in the relation
// codec's own frames after the result envelope.
const maxFramePayload = 1 << 20

// ResultInfo is the JSON envelope of a successful statement: the execution
// stats a client gets alongside the rows. The rows themselves follow as one
// relation wire-codec frame.
type ResultInfo struct {
	// QueryID is the coordinator-assigned query identifier
	// ("s<session>-<seq>"); /debug/queries profiles carry the same ID.
	QueryID string `json:"query_id"`
	// Rows is the result row count (the codec frame that follows holds
	// exactly this many rows).
	Rows int `json:"rows"`
	// ElapsedNS is the statement's end-to-end evaluation time at the server,
	// excluding admission queue time.
	ElapsedNS int64 `json:"elapsed_ns"`
	// QueueNS is the time the statement waited in the admission queue before
	// an execution slot freed (0 when it ran immediately).
	QueueNS int64 `json:"queue_ns,omitempty"`
	// CacheHit reports whether the statement reused a prepared plan from the
	// coordinator's plan cache (parse and optimize were skipped).
	CacheHit bool `json:"cache_hit,omitempty"`
}

// ErrorInfo is the JSON envelope of a failed statement.
type ErrorInfo struct {
	// Code classifies the failure: "parse" (statement rejected before
	// planning), "rejected" (admission queue full — back off and resubmit),
	// "mem_budget" (query exceeded the per-query memory budget), "shutdown"
	// (server is draining), "internal" (anything else).
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeFrame writes one frame: kind byte, uint32 big-endian payload length,
// payload.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, enforcing the payload bound.
func readFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("server: frame payload %d exceeds limit %d", n, maxFramePayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// writeJSONFrame marshals v and writes it as a frame of the given kind.
func writeJSONFrame(w io.Writer, kind byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, kind, payload)
}
