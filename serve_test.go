package skalla

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"skalla/internal/flow"
	"skalla/internal/obs"
)

const (
	serveStmtLight = "SELECT SourceAS, COUNT(*) AS flows FROM Flow GROUP BY SourceAS"
	serveStmtHeavy = "SELECT SourceAS, DestAS, SUM(NumBytes) AS bytes FROM Flow GROUP BY SourceAS, DestAS"
)

// startFlowServer builds an n-site flow cluster and serves it on an ephemeral
// port. The returned catalog pointer is the one the coordinator consults, so
// tests can bump its Generation to invalidate the plan cache.
func startFlowServer(t *testing.T, n int, opts ServerOptions) (*QueryServer, *flow.Dataset, *Catalog) {
	t.Helper()
	d, err := flow.Generate(flow.Config{Rows: 2000, Routers: n, SourceAS: 30, DestAS: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cat := d.Catalog()
	cl, err := NewLocalCluster(n, WithCatalog(cat))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.LoadPartitions(context.Background(), flow.RelationName, d.Parts); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(cl, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, d, cat
}

// TestServeConcurrentSessions is the multi-tenant acceptance check: a 4-site
// cluster serves 32 concurrent sessions mixing SQL and query-text statements.
// Every concurrent result must equal the serial baseline, every storm
// statement must hit the prepared-plan cache, and the profile ring must show
// queries from many distinct sessions.
func TestServeConcurrentSessions(t *testing.T) {
	srv, _, _ := startFlowServer(t, 4, ServerOptions{MaxConcurrent: 8})
	stmts := []string{serveStmtLight, serveStmtHeavy, example1Text}

	// Serial baselines: one session, each statement once, all cold.
	warm, err := DialQueryServer(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	base := make([]*Relation, len(stmts))
	for i, s := range stmts {
		rel, info, err := warm.Query(context.Background(), s)
		if err != nil {
			t.Fatalf("serial %d: %v", i, err)
		}
		if rel.Len() == 0 || info.CacheHit {
			t.Fatalf("serial %d: rows=%d cacheHit=%v, want cold rows", i, rel.Len(), info.CacheHit)
		}
		base[i] = rel
	}
	warm.Close()

	hits0 := obs.ServerPlanCacheHits.Value()
	const sessions = 32
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialQueryServer(srv.Addr())
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			defer c.Close()
			// Stagger statement order across sessions so cache entries are
			// hammered from every angle.
			for k := 0; k < len(stmts); k++ {
				j := (i + k) % len(stmts)
				rel, info, err := c.Query(context.Background(), stmts[j])
				if err != nil {
					t.Errorf("session %d stmt %d: %v", i, j, err)
					return
				}
				if !rel.EqualMultiset(base[j]) {
					t.Errorf("session %d stmt %d: result differs from serial baseline", i, j)
				}
				if !info.CacheHit {
					t.Errorf("session %d stmt %d: expected plan cache hit", i, j)
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := obs.ServerPlanCacheHits.Value() - hits0; got < sessions*int64(len(stmts)) {
		t.Errorf("plan cache hits during storm = %d, want >= %d", got, sessions*len(stmts))
	}
	// The profile ring retains queries from many distinct sessions.
	distinct := map[string]bool{}
	for _, p := range LastProfiles(obs.DefaultProfileCapacity) {
		if i := strings.IndexByte(p.QueryID, '-'); i > 1 && p.QueryID[0] == 's' {
			distinct[p.QueryID[:i]] = true
		}
	}
	if len(distinct) < 8 {
		t.Errorf("profile ring shows %d distinct sessions, want >= 8", len(distinct))
	}
}

// TestServeCatalogGenerationInvalidation checks plan-cache validity: a cached
// plan survives repeats, a catalog Generation bump forces a recompile (miss
// reason "generation"), and the recompiled plan is cached again.
func TestServeCatalogGenerationInvalidation(t *testing.T) {
	srv, _, cat := startFlowServer(t, 2, ServerOptions{})
	c, err := DialQueryServer(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	query := func() (*Relation, bool) {
		t.Helper()
		rel, info, err := c.Query(context.Background(), serveStmtLight)
		if err != nil {
			t.Fatal(err)
		}
		return rel, info.CacheHit
	}
	cold, hit := query()
	if hit {
		t.Fatal("first execution reported a cache hit")
	}
	repeat, hit := query()
	if !hit || !repeat.EqualMultiset(cold) {
		t.Fatalf("repeat: hit=%v equal=%v, want cached identical result", hit, repeat.EqualMultiset(cold))
	}

	gen0 := obs.ServerPlanCacheMisses.With("generation").Value()
	cat.Generation++ // schema/placement change: cached plans are stale
	fresh, hit := query()
	if hit {
		t.Error("statement after Generation bump reported a cache hit")
	}
	if got := obs.ServerPlanCacheMisses.With("generation").Value() - gen0; got != 1 {
		t.Errorf("generation misses = %d, want 1", got)
	}
	if !fresh.EqualMultiset(cold) {
		t.Error("recompiled plan result differs")
	}
	if _, hit := query(); !hit {
		t.Error("recompiled plan was not re-cached")
	}
}

// TestServeMemBudgetIsolation checks the per-query memory budget is per query:
// a statement whose coordinator-side footprint exceeds the budget fails with
// the typed wire code while concurrent small statements complete normally.
func TestServeMemBudgetIsolation(t *testing.T) {
	// 16 KiB sits between the light statement's coordinator footprint (~4 KiB)
	// and the heavy one's (~40 KiB on this dataset).
	srv, _, _ := startFlowServer(t, 4, ServerOptions{MaxConcurrent: 4, QueryMemBudget: 16 << 10})

	var wg sync.WaitGroup
	lightErrs := make([]error, 8)
	for i := range lightErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialQueryServer(srv.Addr())
			if err != nil {
				lightErrs[i] = err
				return
			}
			defer c.Close()
			for k := 0; k < 3; k++ {
				if _, _, err := c.Query(context.Background(), serveStmtLight); err != nil {
					lightErrs[i] = fmt.Errorf("iteration %d: %w", k, err)
					return
				}
			}
		}(i)
	}

	heavy, err := DialQueryServer(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer heavy.Close()
	_, _, err = heavy.Query(context.Background(), serveStmtHeavy)
	var qe *QueryError
	if !errors.As(err, &qe) || qe.Code != "mem_budget" {
		t.Errorf("heavy statement error = %v, want code mem_budget", err)
	}
	// The session survives its budget failure.
	if _, _, err := heavy.Query(context.Background(), serveStmtLight); err != nil {
		t.Errorf("light statement after budget failure: %v", err)
	}

	wg.Wait()
	for i, err := range lightErrs {
		if err != nil {
			t.Errorf("concurrent light session %d: %v", i, err)
		}
	}
}

// TestFacadeConcurrentQueries runs many goroutines through one Cluster (the
// library API, no server) under the race detector with admission and the plan
// cache installed. Profiles must not cross-contaminate: every concurrent
// execution's communication byte totals must equal the serial run's, and
// plan-cache hits must return results identical to the cold compile.
func TestFacadeConcurrentQueries(t *testing.T) {
	cl, d := loadedFlowCluster(t, WithSerializedTransport(),
		WithPlanCache(16), WithMaxConcurrent(4))
	defer cl.Close()
	q := flowQuery(t)

	// The very first execution pays one-time transport warm-up bytes, so take
	// the steady-state serial baseline from a second run.
	if _, err := cl.Execute(context.Background(), q, NoOptimizations()); err != nil {
		t.Fatal(err)
	}
	serial, err := cl.Execute(context.Background(), q, NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := serial.Metrics.TotalBytes()

	const goroutines = 8
	var wg sync.WaitGroup
	ids := make([]string, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, prof, err := cl.ExecuteProfiled(context.Background(), q, NoOptimizations())
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			if !res.Rel.EqualMultiset(serial.Rel) {
				t.Errorf("goroutine %d: result differs from serial run", i)
			}
			if got := res.Metrics.TotalBytes(); got != wantBytes {
				t.Errorf("goroutine %d: byte total %d, want %d (profile cross-contamination?)", i, got, wantBytes)
			}
			ids[i] = prof.QueryID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("query IDs not unique: %q", ids)
		}
		seen[id] = true
	}

	// Statement path: a plan-cache hit returns the same bytes as the cold
	// compile.
	ctx := context.Background()
	cold, hit, err := cl.queryStatement(ctx, serveStmtLight)
	if err != nil || hit {
		t.Fatalf("cold statement: hit=%v err=%v", hit, err)
	}
	hot, hit, err := cl.queryStatement(ctx, serveStmtLight)
	if err != nil || !hit {
		t.Fatalf("repeat statement: hit=%v err=%v", hit, err)
	}
	if !hot.Rel.EqualMultiset(cold.Rel) {
		t.Error("cache-hit result differs from cold compile")
	}
	_ = d
}
