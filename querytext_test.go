package skalla

import (
	"context"
	"strings"
	"testing"

	"skalla/internal/agg"
)

const example1Text = `
# The paper's Example 1.
base Flow key SourceAS, DestAS
op B.SourceAS = R.SourceAS && B.DestAS = R.DestAS :: count(*) as cnt1, sum(NumBytes) as sum1
op B.SourceAS = R.SourceAS && B.DestAS = R.DestAS && R.NumBytes >= B.sum1 / B.cnt1 :: count(*) as cnt2
`

func TestParseQueryTextExample1(t *testing.T) {
	q, err := ParseQueryText(example1Text)
	if err != nil {
		t.Fatal(err)
	}
	if q.Base.Detail != "Flow" || len(q.Base.Cols) != 2 || len(q.Ops) != 2 {
		t.Fatalf("shape: %+v", q)
	}
	if q.Ops[0].Vars[0].Aggs[1].As != "sum1" {
		t.Errorf("aggs: %v", q.Ops[0].Vars[0].Aggs)
	}
	// The parsed query executes and matches the builder-built version.
	cl, _ := loadedFlowCluster(t)
	defer cl.Close()
	want, err := cl.Execute(context.Background(), flowQuery(t), NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Execute(context.Background(), q, NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rel.EqualMultiset(want.Rel) {
		t.Error("text query result differs from builder query")
	}
}

func TestParseQueryTextClauses(t *testing.T) {
	q, err := ParseQueryText(`
base T key a
where R.v > 0
op B.a = R.a :: count(*) as c1
var B.a = R.b :: sum(v) as s1
op T2 B.a = R.a :: avg(v) as a2
`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Base.Where == nil {
		t.Error("where clause lost")
	}
	if len(q.Ops) != 2 || len(q.Ops[0].Vars) != 2 {
		t.Fatalf("ops/vars: %d/%d", len(q.Ops), len(q.Ops[0].Vars))
	}
	if q.Ops[1].Detail != "T2" {
		t.Errorf("op relation = %q", q.Ops[1].Detail)
	}
}

func TestParseQueryTextErrors(t *testing.T) {
	bad := []string{
		"",                                     // no base
		"op B.a = R.a :: count(*) as c",        // op before base
		"where R.v > 0",                        // where before base
		"var true :: count(*) as c",            // var before base
		"base T key a\nbase T key a",           // duplicate base
		"base T",                               // missing key
		"base T key",                           // empty keys
		"base T key a,",                        // trailing empty key
		"frobnicate x",                         // unknown clause
		"base T key a\nop B.a = R.a",           // missing ::
		"base T key a\nop B.a = R.a :: bogus",  // bad agg
		"base T key a\nvar x",                  // var missing ::
		"base T key a\nop (( :: count(*) as c", // bad condition
		"base T key a\nwhere ((",               // bad filter
	}
	for _, src := range bad {
		if _, err := ParseQueryText(src); err == nil {
			t.Errorf("ParseQueryText(%q): expected error", src)
		}
	}
}

// Duplicate where and where-after-op are rejected (the second where used to
// silently overwrite the first), and the errors carry the offending line.
func TestParseQueryTextWherePlacement(t *testing.T) {
	cases := []struct {
		src  string
		frag string // expected error fragment, line number included
	}{
		{
			src:  "base T key a\nwhere R.v > 0\nwhere R.v < 9\nop B.a = R.a :: count(*) as c",
			frag: "line 3: duplicate where",
		},
		{
			src:  "base T key a\nop B.a = R.a :: count(*) as c\nwhere R.v > 0",
			frag: "line 3: where after op",
		},
		{
			src:  "base T key a\n\n# comment\nwhere ((",
			frag: "line 4:",
		},
		{
			src:  "base T key a\nop B.a = R.a :: count(*) as c\nvar (( :: count(*) as c2",
			frag: "line 3:",
		},
	}
	for _, tc := range cases {
		_, err := ParseQueryText(tc.src)
		if err == nil {
			t.Errorf("ParseQueryText(%q): expected error", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("ParseQueryText(%q): error %q missing %q", tc.src, err, tc.frag)
		}
	}
	// A single where before the ops stays legal.
	if _, err := ParseQueryText("base T key a\nwhere R.v > 0\nop B.a = R.a :: count(*) as c"); err != nil {
		t.Errorf("legal where rejected: %v", err)
	}
}

func TestParseAggList(t *testing.T) {
	specs, err := ParseAggList("count(*) as c, SUM(x) AS s, avg(y) as a, min(z) as mn, max(z) as mx, count(w) as cw, variance(y) as vy, stdev(y) as sy")
	if err != nil {
		t.Fatal(err)
	}
	want := []AggSpec{
		{Func: agg.Count, As: "c"},
		{Func: agg.Sum, Arg: "x", As: "s"},
		{Func: agg.Avg, Arg: "y", As: "a"},
		{Func: agg.Min, Arg: "z", As: "mn"},
		{Func: agg.Max, Arg: "z", As: "mx"},
		{Func: agg.Count, Arg: "w", As: "cw"},
		{Func: agg.Variance, Arg: "y", As: "vy"},
		{Func: agg.StdDev, Arg: "y", As: "sy"},
	}
	if len(specs) != len(want) {
		t.Fatalf("len = %d", len(specs))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	bad := []string{
		"",
		"count(*)",        // missing as
		"count(*) as",     // missing name
		"count(*) as a b", // trailing garbage
		"frob(x) as f",    // unknown func
		"sum(*) as s",     // * only for count
		"sum() as s",      // empty arg
		"count(*) as c,,", // empty item
		"count* as c",     // no parens
	}
	for _, src := range bad {
		if _, err := ParseAggList(src); err == nil {
			t.Errorf("ParseAggList(%q): expected error", src)
		}
	}
}

func TestIsBareIdent(t *testing.T) {
	for _, s := range []string{"T", "Flow2", "rel_name"} {
		if !isBareIdent(s) {
			t.Errorf("%q should be a bare identifier", s)
		}
	}
	for _, s := range []string{"", "B.a", "true", "NOT", "(x", "a=b", "'s'"} {
		if isBareIdent(s) {
			t.Errorf("%q should not be a bare identifier", s)
		}
	}
}

func TestParseQueryTextComments(t *testing.T) {
	q, err := ParseQueryText(strings.ReplaceAll(example1Text, "op B.SourceAS", "op B.SourceAS # not a comment here?? no: whole-line comments only\nop B.SourceAS"))
	// The injected line truncates at '#', producing an op without '::' → error.
	if err == nil {
		t.Skipf("parsed unexpectedly: %v", q)
	}
}
