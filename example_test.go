package skalla_test

import (
	"context"
	"fmt"
	"log"

	"skalla"
)

// tinyFlowCluster builds a deterministic two-site cluster with hand-written
// flow rows for the examples.
func tinyFlowCluster() *skalla.Cluster {
	schema, err := skalla.NewSchema(
		skalla.Column{Name: "SourceAS", Kind: 1}, // INT
		skalla.Column{Name: "DestAS", Kind: 1},
		skalla.Column{Name: "NumBytes", Kind: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	mkRel := func(rows [][3]int64) *skalla.Relation {
		r := skalla.NewRelation(schema)
		for _, x := range rows {
			r.MustAppend(skalla.Tuple{skalla.NewInt(x[0]), skalla.NewInt(x[1]), skalla.NewInt(x[2])})
		}
		return r
	}
	cluster, err := skalla.NewLocalCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	// Site 0 holds AS 1, site 1 holds AS 2 (RouterId partitioning).
	if err := cluster.Load(context.Background(), 0, "Flow", mkRel([][3]int64{{1, 1, 10}, {1, 1, 30}, {1, 2, 5}})); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Load(context.Background(), 1, "Flow", mkRel([][3]int64{{2, 1, 7}, {2, 1, 9}})); err != nil {
		log.Fatal(err)
	}
	return cluster
}

// The paper's Example 1 through the query builder: per AS pair, the flow
// count and the count of flows at or above the pair's average size.
func ExampleNewQuery() {
	cluster := tinyFlowCluster()
	defer cluster.Close()

	q, err := skalla.NewQuery("Flow", "SourceAS", "DestAS").
		Op("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS",
			skalla.Count("cnt1"), skalla.Sum("NumBytes", "sum1")).
		Op("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS && R.NumBytes >= B.sum1 / B.cnt1",
			skalla.Count("cnt2")).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Execute(context.Background(), q, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	res.Rel.Sort()
	fmt.Print(res.Rel)
	// Output:
	// SourceAS  DestAS  cnt1  sum1  cnt2
	// 1         1       2     40    1
	// 1         2       1     5     1
	// 2         1       2     16    1
}

// The same analysis in the Egil SQL dialect.
func ExampleTranslateSQL() {
	cluster := tinyFlowCluster()
	defer cluster.Close()

	q, err := skalla.TranslateSQL(`
		SELECT SourceAS, COUNT(*) AS flows, SUM(NumBytes) AS bytes
		FROM Flow
		GROUP BY SourceAS`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Execute(context.Background(), q, skalla.NoOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	res.Rel.Sort()
	fmt.Print(res.Rel)
	// Output:
	// SourceAS  flows  bytes
	// 1         3      45
	// 2         2      16
}

// A data cube over two dimensions: NULL marks a rolled-up dimension; the
// all-NULL row is the grand total.
func ExampleCubeQuery() {
	cluster := tinyFlowCluster()
	defer cluster.Close()

	q, err := skalla.CubeQuery("Flow", []string{"SourceAS", "DestAS"}, skalla.Count("flows"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Execute(context.Background(), q, skalla.NoOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	res.Rel.Sort()
	fmt.Print(res.Rel)
	// Output:
	// SourceAS  DestAS  flows
	// NULL      NULL    5
	// NULL      1       4
	// NULL      2       1
	// 1         NULL    3
	// 1         1       2
	// 1         2       1
	// 2         NULL    2
	// 2         1       2
}

// Explain shows the distributed plan without executing: this aligned query
// collapses to a single fully local round under Cor. 1 when the cluster has
// the distribution catalog; without one, sync reduction still folds the
// base round into MD1 (Prop. 2).
func ExampleCluster_Explain() {
	cluster := tinyFlowCluster()
	defer cluster.Close()

	q := skalla.NewQuery("Flow", "SourceAS").
		Op("B.SourceAS = R.SourceAS", skalla.Count("flows")).
		MustBuild()
	desc, err := cluster.Explain(context.Background(), q, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(desc)
	// Output:
	// plan 1fc38a6009d5b868: 2 site(s), mode all
	//   operators: 1 (coalescing merges: 0)
	//   synchronization rounds: 1
	//   sync reduction: base sync folded into MD1 (Prop. 2)
	//   MD1: coordinator-side group reduction: false, site-side guard: false
	//   rule coalesce           skipped: no adjacent independent operators
	//   rule local-prefix       skipped: no partition-aligned operator prefix
	//   rule sync-skip          applied: base sync folded into MD1 (Prop. 2) (est -1 round(s), -37056 B)
	//   rule group-reduce-coord applied: reduction predicates for 0 of 1 operator round(s) (est +0 round(s), +0 B)
	//   rule group-reduce-site  skipped: no coordinator-driven operator rounds to guard
	//   estimated cost: 1 round(s), 192 B down, 34816 B up
	//     round base+MD1         est 192 B down, 34816 B up
}
