// Benchmarks regenerating the paper's evaluation (Sect. 5): one benchmark
// per figure. Each measures a full distributed query evaluation and reports,
// besides ns/op, the experiment's own units — bytes and group rows
// transferred, and synchronization rounds — so the figure series can be read
// directly from `go test -bench=. -benchmem`. See EXPERIMENTS.md for a
// reference run and the paper-vs-measured comparison.
package skalla_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"skalla/internal/bench"
	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/tpc"
)

// benchConfig is a medium instance: large enough that the traffic shapes
// match the paper's, small enough for quick iterations.
func benchConfig() tpc.Config {
	return tpc.Config{Rows: 12000, Customers: 4000, Nations: 25, CitiesPerNation: 24, Clerks: 600, Seed: 1}
}

var (
	benchOnce sync.Once
	benchData *tpc.Dataset
)

func dataset(b *testing.B) *tpc.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		d, err := tpc.Generate(benchConfig(), 8)
		if err != nil {
			panic(err)
		}
		benchData = d
	})
	return benchData
}

// runQuery executes the query once per iteration and reports traffic metrics
// from the last run.
func runQuery(b *testing.B, d *tpc.Dataset, n int, q gmdj.Query, opts plan.Options) {
	b.Helper()
	c, err := bench.NewTPCCluster(context.Background(), d, n, stats.DefaultLAN())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var last *stats.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Coord.Execute(ctx, q, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res.Metrics
	}
	b.StopTimer()
	b.ReportMetric(float64(last.TotalBytes()), "wire-bytes/op")
	b.ReportMetric(float64(last.TotalRows()), "group-rows/op")
	b.ReportMetric(float64(last.NumRounds()), "rounds")
}

// BenchmarkFig2GroupReduction is Fig. 2: the dependent two-operator query on
// the high-cardinality partition-aligned attribute, across participating
// site counts, without reduction vs. site-side vs. coordinator-side vs.
// both. Expect wire-bytes to grow quadratically with sites on the
// no-reduction series and linearly once both reductions are on.
func BenchmarkFig2GroupReduction(b *testing.B) {
	d := dataset(b)
	q := bench.TwoPhaseQuery(bench.HighCardAttr, true)
	variants := []struct {
		name string
		opts plan.Options
	}{
		{"no-reduction", plan.None()},
		{"site-reduction", plan.Options{GroupReduceSite: true}},
		{"coord-reduction", plan.Options{GroupReduceCoord: true}},
		{"both-reductions", plan.Options{GroupReduceSite: true, GroupReduceCoord: true}},
	}
	for _, v := range variants {
		for _, n := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/sites=%d", v.name, n), func(b *testing.B) {
				runQuery(b, d, n, q, v.opts)
			})
		}
	}
}

// BenchmarkFig3Coalescing is Fig. 3: the independent two-operator query,
// non-coalesced (3 rounds) vs. coalesced (2 rounds), at high and low
// grouping cardinality.
func BenchmarkFig3Coalescing(b *testing.B) {
	d := dataset(b)
	for _, card := range []struct {
		name string
		attr string
	}{{"high-card", bench.HighCardAttr}, {"low-card", bench.LowCardAttr}} {
		q := bench.TwoPhaseQuery(card.attr, false)
		for _, v := range []struct {
			name string
			opts plan.Options
		}{
			{"non-coalesced", plan.None()},
			{"coalesced", plan.Options{Coalesce: true}},
		} {
			for _, n := range []int{2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/sites=%d", card.name, v.name, n), func(b *testing.B) {
					runQuery(b, d, n, q, v.opts)
				})
			}
		}
	}
}

// BenchmarkFig4SyncReduction is Fig. 4: the dependent (non-coalescible)
// query with and without synchronization reduction; with it, the plan
// becomes a single fully local round (Cor. 1).
func BenchmarkFig4SyncReduction(b *testing.B) {
	d := dataset(b)
	for _, card := range []struct {
		name string
		attr string
	}{{"high-card", bench.HighCardAttr}, {"low-card", bench.LowCardAlignedAttr}} {
		q := bench.TwoPhaseQuery(card.attr, true)
		for _, v := range []struct {
			name string
			opts plan.Options
		}{
			{"no-sync-reduction", plan.None()},
			{"sync-reduction", plan.Options{SyncReduce: true}},
		} {
			for _, n := range []int{2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/sites=%d", card.name, v.name, n), func(b *testing.B) {
					runQuery(b, d, n, q, v.opts)
				})
			}
		}
	}
}

// BenchmarkFig5ScaleUp is Fig. 5: four sites, per-site data scaled ×1..×4,
// all optimizations vs. none. Both series grow linearly with data size; the
// optimized one at roughly half the cost.
func BenchmarkFig5ScaleUp(b *testing.B) {
	base := benchConfig()
	base.Rows = 4000
	base.Customers = 1600
	q := bench.TwoPhaseQuery(bench.HighCardAttr, true)
	for _, scale := range []int{1, 2, 4} {
		cfg := base
		cfg.Rows = base.Rows * scale
		cfg.Customers = base.Customers * scale
		d, err := tpc.Generate(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range []struct {
			name string
			opts plan.Options
		}{
			{"unoptimized", plan.None()},
			{"optimized", plan.All()},
		} {
			b.Run(fmt.Sprintf("%s/scale=%d", v.name, scale), func(b *testing.B) {
				runQuery(b, d, 4, q, v.opts)
			})
		}
	}
}

// BenchmarkFig5ConstantGroups is the Sect. 5.3 variant of Fig. 5: the data
// grows but the group domain is fixed.
func BenchmarkFig5ConstantGroups(b *testing.B) {
	base := benchConfig()
	base.Rows = 4000
	base.Customers = 1600
	q := bench.TwoPhaseQuery(bench.HighCardAttr, true)
	for _, scale := range []int{1, 2, 4} {
		cfg := base
		cfg.Rows = base.Rows * scale // customers fixed
		d, err := tpc.Generate(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("optimized/scale=%d", scale), func(b *testing.B) {
			runQuery(b, d, 4, q, plan.All())
		})
	}
}

// BenchmarkWireCodec compares the column-major wire codec against per-payload
// gob encoding on an H_i-shaped relation (grouping key plus COUNT/AVG physical
// columns, the dominant payload of every synchronization round). The codec
// must come in well under gob — the acceptance bar is at least 30% fewer
// bytes — and bytes/op for both is reported so the margin is visible.
func BenchmarkWireCodec(b *testing.B) {
	// gobShadow has the same shape as relation.Relation but no GobEncode hook,
	// so encoding it measures what gob alone would ship.
	type gobShadow struct {
		Schema relation.Schema
		Tuples []relation.Tuple
	}
	h := relation.New(relation.MustSchema(
		relation.Column{Name: "CustName", Kind: relation.KindString},
		relation.Column{Name: "cnt1", Kind: relation.KindInt},
		relation.Column{Name: "sum1", Kind: relation.KindFloat},
		relation.Column{Name: "cnt2", Kind: relation.KindInt},
		relation.Column{Name: "sum2", Kind: relation.KindFloat},
	))
	// Full-precision floats model real AVG/SUM aggregates (a mean of prices
	// has no trailing-zero mantissa for either encoder to exploit).
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		h.MustAppend(relation.Tuple{
			relation.NewString(tpc.CustNameOf(int64(i))),
			relation.NewInt(int64(1 + rng.Intn(97))),
			relation.NewFloat(rng.Float64() * 1e5),
			relation.NewInt(int64(1 + rng.Intn(13))),
			relation.NewFloat(rng.Float64() * 100),
		})
	}
	b.Run("codec", func(b *testing.B) {
		var size int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := relation.Marshal(h)
			if err != nil {
				b.Fatal(err)
			}
			size = len(data)
		}
		b.ReportMetric(float64(size), "payload-bytes/op")
	})
	b.Run("gob", func(b *testing.B) {
		var size int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&gobShadow{Schema: h.Schema, Tuples: h.Tuples}); err != nil {
				b.Fatal(err)
			}
			size = buf.Len()
		}
		b.ReportMetric(float64(size), "payload-bytes/op")
	})
}

// BenchmarkSyncMerge measures the coordinator's Theorem 1 synchronization in
// isolation: merging per-site sub-aggregate relations into the key-indexed
// base-result structure. The merge is O(|H|); ns/op should scale linearly
// with the group count.
func BenchmarkSyncMerge(b *testing.B) {
	for _, groups := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Customers = groups
			cfg.Rows = groups * 3
			d, err := tpc.Generate(cfg, 4)
			if err != nil {
				b.Fatal(err)
			}
			c, err := bench.NewTPCCluster(context.Background(), d, 4, stats.NetModel{})
			if err != nil {
				b.Fatal(err)
			}
			// A single-operator query keeps the measurement dominated by the
			// operator round's synchronization.
			q := bench.TwoPhaseQuery(bench.HighCardAttr, true)
			q.Ops = q.Ops[:1]
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Coord.Execute(ctx, q, plan.None()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
