package skalla

import (
	"context"
	"errors"
	"strings"
	"time"

	"skalla/internal/core"
	"skalla/internal/egil"
	"skalla/internal/gmdj"
	"skalla/internal/server"
)

// Typed failures of the multi-tenant coordinator server (re-exported from
// internal/core). Match with errors.Is.
var (
	// ErrAdmissionReject: the admission wait queue was full; back off and
	// resubmit.
	ErrAdmissionReject = core.ErrAdmissionReject
	// ErrQueryMemBudget: the query exceeded the per-query coordinator memory
	// budget and was failed; concurrent queries are unaffected.
	ErrQueryMemBudget = core.ErrQueryMemBudget
)

// Query-server types (re-exported from internal/server).
type (
	// QueryServer is a long-lived multi-tenant coordinator server: many
	// concurrent client sessions over one TCP listener.
	QueryServer = server.Server
	// QueryClient is one session against a QueryServer.
	QueryClient = server.Client
	// QueryResultInfo is the per-statement execution stats a client receives
	// alongside the result rows.
	QueryResultInfo = server.ResultInfo
	// QueryError is a statement failure reported by the server, with a wire
	// code ("parse", "rejected", "mem_budget", "shutdown", "internal").
	QueryError = server.QueryError
)

// Query-client constructors (re-exported from internal/server).
var (
	// DialQueryServer opens a session against a QueryServer.
	DialQueryServer = server.Dial
	// DialQueryServerContext is DialQueryServer under a context deadline.
	DialQueryServerContext = server.DialContext
)

// DefaultPlanCacheSize is the prepared-plan cache capacity Serve installs
// when ServerOptions leaves PlanCacheSize at zero.
const DefaultPlanCacheSize = 128

// DefaultResultCacheSize is the super-aggregate result cache capacity Serve
// installs when ServerOptions leaves ResultCacheSize at zero.
const DefaultResultCacheSize = 64

// ServerOptions configures Serve. The zero value asks for production
// defaults: GOMAXPROCS concurrent queries with a 4x wait queue, a
// DefaultPlanCacheSize-entry plan cache, a DefaultResultCacheSize-entry
// result cache, single-flight query collapsing, and no per-query memory
// budget.
type ServerOptions struct {
	// MaxConcurrent bounds concurrently executing queries across all
	// sessions; <= 0 means GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth bounds queries waiting for an execution slot: 0 means
	// 4 x MaxConcurrent, negative means no wait queue (excess queries are
	// rejected immediately). Queue time is recorded in the query profile and
	// reported to the client.
	QueueDepth int
	// PlanCacheSize is the prepared-plan cache capacity: 0 means
	// DefaultPlanCacheSize, negative disables caching.
	PlanCacheSize int
	// ResultCacheSize is the super-aggregate result cache capacity: repeat
	// queries whose plan fingerprint matches a cached entry are served with
	// zero site rounds, invalidated when the catalog generation moves. 0
	// means DefaultResultCacheSize, negative disables the cache.
	ResultCacheSize int
	// NoSingleFlight disables single-flight query collapsing. By default the
	// server collapses concurrent statements with the same plan fingerprint:
	// one leader runs the distributed rounds while the others await its
	// committed result.
	NoSingleFlight bool
	// BatchWindow enables cross-query site-call batching: concurrent operator
	// rounds against the same detail relation at the same site that arrive
	// within this window are shipped as one exchange the site serves from a
	// single scan of its partition. 0 (the default) disables batching.
	BatchWindow time.Duration
	// QueryMemBudget bounds the coordinator-side memory one query may hold,
	// in bytes; 0 disables the budget. Over-budget queries fail with
	// ErrQueryMemBudget (wire code "mem_budget").
	QueryMemBudget int64
}

// Serve starts a multi-tenant query server for the cluster on addr
// ("host:port"; ":0" for an ephemeral port). Each client session submits
// statements — Egil SQL (SELECT ...) or the skalla query text format — and
// receives result rows plus execution stats; statements plan under the
// cluster's configured plan mode. Serve installs the admission, plan-cache,
// shared-work (result cache, single-flight, site-call batching) and
// memory-budget settings from opts on the cluster's coordinator (overriding
// any WithPlanCache / WithMaxConcurrent / WithQueryMemBudget /
// WithResultCache / WithSingleFlight / WithBatchWindow construction options),
// so they also govern queries executed directly through the Cluster API while
// the server runs.
//
// Stop the server with QueryServer.Shutdown (drains in-flight statements) or
// Close (immediate).
func Serve(cluster *Cluster, addr string, opts ServerOptions) (*QueryServer, error) {
	size := opts.PlanCacheSize
	if size == 0 {
		size = DefaultPlanCacheSize
	}
	cluster.coord.SetPlanCache(size) // negative size disables
	rcSize := opts.ResultCacheSize
	switch {
	case rcSize == 0:
		rcSize = DefaultResultCacheSize
	case rcSize < 0:
		rcSize = 0 // core: 0 disables
	}
	cluster.coord.SetResultCache(rcSize)
	cluster.coord.SetSingleFlight(!opts.NoSingleFlight)
	cluster.coord.SetBatchWindow(opts.BatchWindow)
	queue := opts.QueueDepth
	switch {
	case queue == 0:
		queue = -1 // core default: 4 x MaxConcurrent
	case queue < 0:
		queue = 0 // no wait queue
	}
	cluster.coord.SetAdmission(opts.MaxConcurrent, queue)
	cluster.coord.SetQueryMemBudget(opts.QueryMemBudget)
	return server.Serve(cluster.statementHandler(), addr)
}

// statementHandler adapts the cluster into the server's per-statement
// evaluation callback. Statement grammars live here in the root package —
// internal/server stays protocol-only.
func (c *Cluster) statementHandler() server.Handler {
	return func(ctx context.Context, stmt string) (*server.Result, error) {
		res, hit, err := c.queryStatement(ctx, stmt)
		if err != nil {
			switch {
			case errors.Is(err, core.ErrAdmissionReject):
				return nil, server.Coded("rejected", err)
			case errors.Is(err, core.ErrQueryMemBudget):
				return nil, server.Coded("mem_budget", err)
			}
			return nil, err // parse errors arrive pre-coded; the rest are "internal"
		}
		out := &server.Result{Rel: res.Rel, CacheHit: hit}
		if res.Profile != nil {
			out.Queued = res.Profile.QueueTime
		}
		return out, nil
	}
}

// queryStatement evaluates one statement string the way a server session
// does: SELECT statements use the Egil SQL dialect (with its ORDER BY / LIMIT
// postprocessing), anything else the skalla query text format; both plan
// under the cluster's configured selection through the prepared-plan cache.
// The returned flag reports a plan-cache hit. SQL statements re-parse even on
// a hit — their postprocessing needs the statement — while query-text hits
// skip parsing entirely; both skip plan optimization on a hit.
func (c *Cluster) queryStatement(ctx context.Context, stmt string) (*Result, bool, error) {
	var (
		post  *egil.Statement
		parse func() (gmdj.Query, error)
	)
	if fields := strings.Fields(stmt); len(fields) > 0 && strings.EqualFold(fields[0], "select") {
		var err error
		post, err = egil.ParseStatement(stmt)
		if err != nil {
			return nil, false, server.Coded("parse", err)
		}
		parse = post.ToQuery
	} else {
		parse = func() (gmdj.Query, error) {
			q, err := ParseQueryText(stmt)
			if err != nil {
				return q, server.Coded("parse", err)
			}
			return q, nil
		}
	}
	res, hit, err := c.coord.ExecuteCached(ctx, stmt, c.sel, parse)
	if err != nil {
		return nil, hit, err
	}
	if post != nil {
		if err := post.Postprocess(res.Rel); err != nil {
			return nil, hit, err
		}
	}
	return res, hit, nil
}
