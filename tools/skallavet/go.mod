module skalla/tools/skallavet

go 1.22
