package checktest

import (
	"go/ast"
	"go/importer"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"skalla/tools/skallavet/analysis"
)

// flagfoo reports every call of a function literally named flagme — a
// minimal diagnostic source for exercising the suppression machinery.
var flagfoo = &analysis.Analyzer{
	Name: "flagfoo",
	Doc:  "test analyzer: flags calls to flagme",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
						pass.Reportf(call.Pos(), "flagme called")
					}
				}
				return true
			})
		}
		return nil
	},
}

func loadFixture(t *testing.T, pkgpath string) (*token.FileSet, *loaded, string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		srcRoot: srcRoot,
		pkgs:    map[string]*loaded{},
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkgpath, err)
	}
	return ld.fset, pkg, filepath.Join(srcRoot, pkgpath)
}

// TestAllowSuppresses: without audit mode the live allow silences the one
// diagnostic and the stale directives stay silent too.
func TestAllowSuppresses(t *testing.T) {
	fset, pkg, dir := loadFixture(t, "auditdemo")
	findings, _, err := analysis.Run(&analysis.Package{
		Fset:  fset,
		Files: pkg.files,
		Types: pkg.types,
		Info:  pkg.info,
		Dir:   dir,
	}, []*analysis.Analyzer{flagfoo}, analysis.Config{ExtraFiles: pkg.excluded})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("expected no findings outside audit mode, got %v", findings)
	}
}

// TestAuditFindsStaleAllows: audit mode keeps real suppressions quiet but
// reports the dead directive, the misnamed rule, and the directive hiding
// in the build-excluded file.
func TestAuditFindsStaleAllows(t *testing.T) {
	fset, pkg, dir := loadFixture(t, "auditdemo")
	if len(pkg.excluded) != 1 || !strings.HasSuffix(pkg.excluded[0], "excluded.go") {
		t.Fatalf("fixture should exclude excluded.go via //go:build ignore, got %v", pkg.excluded)
	}
	findings, _, err := analysis.Run(&analysis.Package{
		Fset:  fset,
		Files: pkg.files,
		Types: pkg.types,
		Info:  pkg.info,
		Dir:   dir,
	}, []*analysis.Analyzer{flagfoo}, analysis.Config{
		AuditAllows: true,
		ExtraFiles:  pkg.excluded,
	})
	if err != nil {
		t.Fatal(err)
	}
	type expect struct {
		file string
		line int
		sub  string
	}
	expected := []expect{
		{"demo.go", 12, "no longer fires on this line"},
		{"demo.go", 16, "not a skallavet rule"},
		{"excluded.go", 8, "suppression in a build-excluded file"},
	}
	if len(findings) != len(expected) {
		t.Fatalf("expected %d audit findings, got %d: %v", len(expected), len(findings), findings)
	}
	for i, want := range expected {
		got := findings[i]
		if filepath.Base(got.Pos.Filename) != want.file || got.Pos.Line != want.line ||
			!strings.Contains(got.Message, want.sub) {
			t.Errorf("finding %d: got %s:%d %q, want %s:%d containing %q",
				i, filepath.Base(got.Pos.Filename), got.Pos.Line, got.Message,
				want.file, want.line, want.sub)
		}
	}
}
