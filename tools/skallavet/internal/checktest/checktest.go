// Package checktest is a minimal analysistest equivalent: it loads a
// fixture package from testdata/src/<path> (GOPATH-style, so fixtures can
// fake hot-path import paths like skalla/internal/engine), type-checks it
// with fixture-local imports resolved from the same tree and standard
// library imports resolved from $GOROOT source, runs one analyzer, and
// compares the findings against `// want "regexp"` comments in the
// fixtures.
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"skalla/tools/skallavet/analysis"
)

// Run loads testdata/src/<pkgpath> relative to the calling test's working
// directory, applies the analyzer, and checks the findings against the
// fixture's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		srcRoot: srcRoot,
		pkgs:    map[string]*loaded{},
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkgpath, err)
	}
	findings, err := analysis.Run(&analysis.Package{
		Fset:  ld.fset,
		Files: pkg.files,
		Types: pkg.types,
		Info:  pkg.info,
		Dir:   filepath.Join(srcRoot, pkgpath),
	}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkgpath, err)
	}
	checkWants(t, ld.fset, pkg.files, findings)
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkWants enforces a bijection between findings and // want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, raw := range splitQuoted(strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", posn.Filename, posn.Line, raw, err)
						continue
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re, raw: raw})
				}
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted extracts the quoted segments of a want comment; patterns may
// be double- or backtick-quoted (backticks let patterns contain literal
// double quotes): want "a" `b "c"` -> ["a", `b "c"`].
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexAny(s, "\"`")
		if start < 0 {
			return out
		}
		quote := s[start]
		s = s[start+1:]
		end := strings.IndexByte(s, quote)
		if end < 0 {
			return out
		}
		out = append(out, s[:end])
		s = s[end+1:]
	}
}

type loaded struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader resolves fixture-local packages from srcRoot and everything else
// through the $GOROOT source importer, sharing one FileSet so positions
// stay coherent.
type loader struct {
	fset     *token.FileSet
	srcRoot  string
	pkgs     map[string]*loaded
	fallback types.Importer
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if fi, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil && fi.IsDir() {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return ld.fallback.Import(path)
}

func (ld *loader) load(pkgpath string) (*loaded, error) {
	if pkg, ok := ld.pkgs[pkgpath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcRoot, pkgpath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgpath, err)
	}
	pkg := &loaded{files: files, types: tpkg, info: info}
	ld.pkgs[pkgpath] = pkg
	return pkg, nil
}
