// Package checktest is a minimal analysistest equivalent: it loads a
// fixture package from testdata/src/<path> (GOPATH-style, so fixtures can
// fake hot-path import paths like skalla/internal/engine), type-checks it
// with fixture-local imports resolved from the same tree and standard
// library imports resolved from $GOROOT source, runs one analyzer, and
// compares the findings against `// want "regexp"` comments in the
// fixtures.
//
// Cross-package facts work the same way the real driver's vetx pipeline
// does: fixture dependencies are analyzed first (facts only), and their
// exported facts are fed to the root package's run. A fixture file whose
// first lines carry a `//go:build ignore` constraint is excluded from the
// load — it stands in for a build-tag-excluded file, which RunAudit hands
// to the stale-suppression audit.
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"skalla/tools/skallavet/analysis"
)

// Run loads testdata/src/<pkgpath> relative to the calling test's working
// directory, applies the analyzer, and checks the findings against the
// fixture's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	run(t, a, pkgpath, false)
}

// RunAudit is Run with the stale-suppression audit enabled: findings include
// auditallow diagnostics for dead //skallavet:allow directives and for
// directives in build-excluded fixture files (`//go:build ignore`).
func RunAudit(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	run(t, a, pkgpath, true)
}

func run(t *testing.T, a *analysis.Analyzer, pkgpath string, audit bool) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		srcRoot: srcRoot,
		pkgs:    map[string]*loaded{},
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	pkg, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkgpath, err)
	}

	// Dependency fixtures completed loading before the root (the importer
	// recursion bottoms out first), so ld.order is already topological:
	// each package's facts are computed before any importer needs them.
	importFacts := map[string]analysis.PackageFacts{}
	for _, depPath := range ld.order {
		if depPath == pkgpath {
			continue
		}
		dep := ld.pkgs[depPath]
		_, facts, err := analysis.Run(&analysis.Package{
			Fset:  ld.fset,
			Files: dep.files,
			Types: dep.types,
			Info:  dep.info,
			Dir:   filepath.Join(srcRoot, depPath),
		}, []*analysis.Analyzer{a}, analysis.Config{
			ImportFacts: importFacts,
			FactsOnly:   true,
		})
		if err != nil {
			t.Fatalf("facts for fixture dep %s: %v", depPath, err)
		}
		if facts != nil {
			importFacts[depPath] = facts
		}
	}

	findings, _, err := analysis.Run(&analysis.Package{
		Fset:  ld.fset,
		Files: pkg.files,
		Types: pkg.types,
		Info:  pkg.info,
		Dir:   filepath.Join(srcRoot, pkgpath),
	}, []*analysis.Analyzer{a}, analysis.Config{
		ImportFacts: importFacts,
		AuditAllows: audit,
		ExtraFiles:  pkg.excluded,
	})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkgpath, err)
	}
	checkWants(t, ld.fset, pkg.files, pkg.excluded, findings)
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkWants enforces a bijection between findings and // want comments.
// Excluded files can carry want comments too (for audit findings); those are
// harvested textually since the files are not parsed.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, excluded []string, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	addWant := func(file string, line int, raw string) {
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Errorf("%s:%d: bad want pattern %q: %v", file, line, raw, err)
			return
		}
		wants = append(wants, &want{file: file, line: line, re: re, raw: raw})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, raw := range splitQuoted(strings.TrimPrefix(text, "want ")) {
					addWant(posn.Filename, posn.Line, raw)
				}
			}
		}
	}
	for _, path := range excluded {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			for _, raw := range splitQuoted(line[idx+len("// want "):]) {
				addWant(path, i+1, raw)
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted extracts the quoted segments of a want comment; patterns may
// be double- or backtick-quoted (backticks let patterns contain literal
// double quotes): want "a" `b "c"` -> ["a", `b "c"`].
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexAny(s, "\"`")
		if start < 0 {
			return out
		}
		quote := s[start]
		s = s[start+1:]
		end := strings.IndexByte(s, quote)
		if end < 0 {
			return out
		}
		out = append(out, s[:end])
		s = s[end+1:]
	}
}

type loaded struct {
	files    []*ast.File
	types    *types.Package
	info     *types.Info
	excluded []string
}

// loader resolves fixture-local packages from srcRoot and everything else
// through the $GOROOT source importer, sharing one FileSet so positions
// stay coherent.
type loader struct {
	fset     *token.FileSet
	srcRoot  string
	pkgs     map[string]*loaded
	order    []string
	fallback types.Importer
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if fi, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil && fi.IsDir() {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return ld.fallback.Import(path)
}

// buildExcluded reports whether the file opts out of the fixture build via a
// `//go:build ignore` constraint in its header.
func buildExcluded(name string) bool {
	data, err := os.ReadFile(name)
	if err != nil {
		return false
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if trimmed == "//go:build ignore" {
			return true
		}
	}
	return false
}

func (ld *loader) load(pkgpath string) (*loaded, error) {
	if pkg, ok := ld.pkgs[pkgpath]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcRoot, pkgpath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names, excluded []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			name := filepath.Join(dir, e.Name())
			if buildExcluded(name) {
				excluded = append(excluded, name)
				continue
			}
			names = append(names, name)
		}
	}
	sort.Strings(names)
	sort.Strings(excluded)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgpath, err)
	}
	pkg := &loaded{files: files, types: tpkg, info: info, excluded: excluded}
	ld.pkgs[pkgpath] = pkg
	ld.order = append(ld.order, pkgpath)
	return pkg, nil
}
