// Fixture for the stale-suppression audit: one live allow, one stale
// allow, one misnamed rule.
package auditdemo

func flagme() {}

func fires() {
	flagme() //skallavet:allow flagfoo -- deliberate fixture hit
}

func staleLine() {
	//skallavet:allow flagfoo -- nothing fires here anymore
	_ = 1
}

//skallavet:allow notarule -- typo in the rule name
func misnamed() {}
