//go:build ignore

// A build-tag-excluded file: the analyzers never see these lines, so any
// allow directive in here is definitionally stale.
package auditdemo

func old() {
	flagme() //skallavet:allow flagfoo -- cannot suppress anything
}
