// Package vetdriver implements the `go vet -vettool` protocol (the one
// golang.org/x/tools/go/analysis/unitchecker speaks) from scratch on the
// standard library, so skallavet needs no external dependencies:
//
//   - `skallavet -V=full` prints a version line cmd/go uses as a cache key;
//   - `skallavet -flags` prints the tool's analyzer flags as JSON (none);
//   - `skallavet <dir>/vet.cfg` type-checks one package from the JSON config
//     cmd/go wrote (source files plus export data for every dependency),
//     runs the analyzers, prints findings, and exits 2 if any survive;
//   - `skallavet ./...` (no .cfg argument) re-execs `go vet -vettool=self`,
//     so the standalone invocation and the CI invocation are the same code
//     path;
//   - `skallavet -audit-allows ./...` additionally fails on stale
//     //skallavet:allow directives (rules that no longer fire on their line,
//     and suppressions in build-excluded files).
//
// Dependency export data is read with go/importer's compiler-aware lookup
// mode, which understands the build cache artifacts cmd/go lists in the
// config's PackageFile map.
//
// Cross-package facts ride the same protocol: a dependency pass (VetxOnly)
// of an in-module package runs the fact-producing analyzers and serializes
// their facts into the package's vetx file; analyzing an importer, the
// driver loads the vetx files cmd/go lists in PackageVetx and hands the
// decoded facts to the analyzers through Pass.ImportObjectFact.
package vetdriver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"skalla/tools/skallavet/analysis"
)

const version = "v2.0.0"

// auditEnv carries the -audit-allows mode from the standalone invocation to
// the per-package re-invocations cmd/go makes. The -V=full answer includes
// it, so audited and plain runs occupy distinct vet result cache entries.
const auditEnv = "SKALLAVET_AUDIT_ALLOWS"

func auditMode() bool { return os.Getenv(auditEnv) == "1" }

// selfHash fingerprints the running binary for the -V=full cache key; a
// rebuilt tool must never reuse vet results (or vetx fact files) computed
// by an older build.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// Main is the tool entry point. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	args := os.Args[1:]
	audit := auditMode()
	var rest []string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// cmd/go parses this as "<name> version <semver>" and folds it
			// into the vet result cache key, so the answer must change
			// whenever the tool's behavior does: include a hash of the
			// binary itself. The audit marker keys audited runs separately.
			v := version + "-" + selfHash()
			if audit {
				v += "-audit"
			}
			//skallavet:allow nostdlog -- vet -vettool protocol handshake answers on stdout
			fmt.Printf("skallavet version %s\n", v)
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			//skallavet:allow nostdlog -- vet -vettool protocol handshake answers on stdout
			fmt.Println("[]")
			os.Exit(0)
		case arg == "-audit-allows" || arg == "--audit-allows":
			audit = true
			continue
		case strings.HasSuffix(arg, ".cfg"):
			code, err := checkConfig(arg, analyzers, audit)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skallavet: %v\n", err)
				os.Exit(1)
			}
			os.Exit(code)
		}
		rest = append(rest, arg)
	}
	// Standalone mode: let the go command do package loading and hand each
	// package back to this binary as a vet.cfg.
	os.Exit(standalone(rest, audit))
}

func standalone(args []string, audit bool) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skallavet: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Env = os.Environ()
	if audit {
		cmd.Env = append(cmd.Env, auditEnv+"=1")
	}
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "skallavet: %v\n", err)
		return 1
	}
	return 0
}

// config mirrors cmd/go/internal/work.vetConfig — the JSON contract between
// the go command and a vet tool.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// hasFacts reports whether any analyzer exports facts — only then are
// dependency (VetxOnly) passes worth type-checking.
func hasFacts(analyzers []*analysis.Analyzer) bool {
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			return true
		}
	}
	return false
}

// factAnalyzers returns the subset of analyzers that export facts.
func factAnalyzers(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

func checkConfig(cfgPath string, analyzers []*analysis.Analyzer, audit bool) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("%s: %w", cfgPath, err)
	}
	writeVetx := func(facts analysis.PackageFacts) {
		if cfg.VetxOutput == "" {
			return
		}
		payload, err := analysis.EncodeFacts(facts)
		if err != nil || len(facts) == 0 {
			payload = nil
		}
		_ = os.WriteFile(cfg.VetxOutput, payload, 0o666)
	}
	if cfg.VetxOnly {
		// Dependency pass: standard-library and out-of-module packages carry
		// no skallavet facts — record an empty vetx and return, which keeps
		// `go vet ./...` fast on the dependency closure. In-module packages
		// run the fact-producing analyzers so importers can see across the
		// boundary.
		if !hasFacts(analyzers) || cfg.Standard[cfg.ImportPath] || !inModule(&cfg) {
			writeVetx(nil)
			return 0, nil
		}
		analyzers = factAnalyzers(analyzers)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(nil)
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{
		Importer:  newImporter(fset, &cfg),
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(nil)
			return 0, nil
		}
		return 0, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	findings, facts, err := analysis.Run(&analysis.Package{
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Dir:   cfg.Dir,
	}, analyzers, analysis.Config{
		ImportFacts: loadImportFacts(&cfg),
		FactsOnly:   cfg.VetxOnly,
		AuditAllows: audit,
		ExtraFiles:  goFilesOnly(cfg.IgnoredFiles),
	})
	writeVetx(facts)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2, nil
	}
	return 0, nil
}

// inModule reports whether the package under analysis belongs to a module at
// all. Standard-library packages carry an empty ModulePath (and cmd/go's
// Standard map lists only a package's *imports*, never the package itself,
// so it cannot gate the self package); computing facts for them would drag
// runtime-internal locks (sync.allPoolsMu, gob's typeLock, ...) into the
// lock-order fact cascade.
func inModule(cfg *config) bool {
	return cfg.ModulePath != ""
}

// loadImportFacts decodes the vetx facts of every dependency cmd/go listed.
// Std-lib vetx files are empty by construction (see the VetxOnly path) and
// decode to nil.
func loadImportFacts(cfg *config) map[string]analysis.PackageFacts {
	out := map[string]analysis.PackageFacts{}
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		facts, err := analysis.DecodeFacts(data)
		if err != nil || facts == nil {
			continue
		}
		out[path] = facts
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func goFilesOnly(paths []string) []string {
	var out []string
	for _, p := range paths {
		if strings.HasSuffix(p, ".go") {
			out = append(out, p)
		}
	}
	return out
}

// newImporter resolves dependency imports through the export-data files the
// go command listed in the config: source-level import paths are first
// canonicalized through ImportMap (vendoring, test variants), then read via
// the compiler importer's lookup hook.
func newImporter(fset *token.FileSet, cfg *config) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	return &mapImporter{
		base:      importer.ForCompiler(fset, compiler, lookup),
		importMap: cfg.ImportMap,
	}
}

type mapImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.importMap[path]; ok && mapped != "" {
		path = mapped
	}
	return m.base.Import(path)
}
