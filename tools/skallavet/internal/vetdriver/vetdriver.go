// Package vetdriver implements the `go vet -vettool` protocol (the one
// golang.org/x/tools/go/analysis/unitchecker speaks) from scratch on the
// standard library, so skallavet needs no external dependencies:
//
//   - `skallavet -V=full` prints a version line cmd/go uses as a cache key;
//   - `skallavet -flags` prints the tool's analyzer flags as JSON (none);
//   - `skallavet <dir>/vet.cfg` type-checks one package from the JSON config
//     cmd/go wrote (source files plus export data for every dependency),
//     runs the analyzers, prints findings, and exits 2 if any survive;
//   - `skallavet ./...` (no .cfg argument) re-execs `go vet -vettool=self`,
//     so the standalone invocation and the CI invocation are the same code
//     path.
//
// Dependency export data is read with go/importer's compiler-aware lookup
// mode, which understands the build cache artifacts cmd/go lists in the
// config's PackageFile map.
package vetdriver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"skalla/tools/skallavet/analysis"
)

const version = "v1.0.0"

// Main is the tool entry point. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	args := os.Args[1:]
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// cmd/go parses this as "<name> version <semver>"; anything
			// stable works as the content hash for vet result caching.
			//skallavet:allow nostdlog -- vet -vettool protocol handshake answers on stdout
			fmt.Printf("skallavet version %s\n", version)
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			//skallavet:allow nostdlog -- vet -vettool protocol handshake answers on stdout
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			code, err := checkConfig(arg, analyzers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "skallavet: %v\n", err)
				os.Exit(1)
			}
			os.Exit(code)
		}
	}
	// Standalone mode: let the go command do package loading and hand each
	// package back to this binary as a vet.cfg.
	os.Exit(standalone(args))
}

func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "skallavet: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "skallavet: %v\n", err)
		return 1
	}
	return 0
}

// config mirrors cmd/go/internal/work.vetConfig — the JSON contract between
// the go command and a vet tool.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func checkConfig(cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("%s: %w", cfgPath, err)
	}
	// skallavet produces no cross-package facts, so dependency passes
	// (VetxOnly) have nothing to compute: record the empty facts file and
	// return, which keeps `go vet ./...` fast on the dependency closure.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{
		Importer:  newImporter(fset, &cfg),
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0, nil
		}
		return 0, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	findings, err := analysis.Run(&analysis.Package{
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Dir:   cfg.Dir,
	}, analyzers)
	writeVetx()
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2, nil
	}
	return 0, nil
}

// newImporter resolves dependency imports through the export-data files the
// go command listed in the config: source-level import paths are first
// canonicalized through ImportMap (vendoring, test variants), then read via
// the compiler importer's lookup hook.
func newImporter(fset *token.FileSet, cfg *config) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	return &mapImporter{
		base:      importer.ForCompiler(fset, compiler, lookup),
		importMap: cfg.ImportMap,
	}
}

type mapImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.importMap[path]; ok && mapped != "" {
		path = mapped
	}
	return m.base.Import(path)
}
