// Command skallavet is Skalla's invariant checker: a multi-analyzer static
// analysis suite run as `go vet -vettool=$(command -v skallavet) ./...` (or
// simply `skallavet ./...`, which re-execs go vet). Each analyzer is an
// executable design rule — see DESIGN.md §10 for the rule → origin-PR →
// rationale table.
//
// `skallavet -audit-allows ./...` additionally fails on stale
// //skallavet:allow suppressions.
package main

import (
	"skalla/tools/skallavet/analyzers/blockpool"
	"skalla/tools/skallavet/analyzers/chargepair"
	"skalla/tools/skallavet/analyzers/ctxcall"
	"skalla/tools/skallavet/analyzers/errclass"
	"skalla/tools/skallavet/analyzers/goroutinelife"
	"skalla/tools/skallavet/analyzers/lockorder"
	"skalla/tools/skallavet/analyzers/metricname"
	"skalla/tools/skallavet/analyzers/nostdlog"
	"skalla/tools/skallavet/analyzers/rulename"
	"skalla/tools/skallavet/analyzers/stringkey"
	"skalla/tools/skallavet/analyzers/wirecompat"
	"skalla/tools/skallavet/internal/vetdriver"
)

func main() {
	vetdriver.Main(
		stringkey.Analyzer,
		blockpool.Analyzer,
		wirecompat.Analyzer,
		ctxcall.Analyzer,
		nostdlog.Analyzer,
		metricname.Analyzer,
		rulename.Analyzer,
		lockorder.Analyzer,
		goroutinelife.Analyzer,
		chargepair.Analyzer,
		errclass.Analyzer,
	)
}
