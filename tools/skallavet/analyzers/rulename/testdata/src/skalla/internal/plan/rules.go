// Fixture: the planner package (import path matches the enforcement scope).
package plan

// goodRule: a well-formed rule name.
type goodRule struct{}

func (goodRule) Name() string { return "coalesce" }

// multiWordRule: kebab-case with several words is fine.
type multiWordRule struct{}

func (multiWordRule) Name() string { return "group-reduce-coord" }

// camelRule: not kebab-case.
type camelRule struct{}

func (camelRule) Name() string { return "SyncSkip" } // want `name "SyncSkip" is not kebab-case`

// underscoreRule: snake_case is not kebab-case.
type underscoreRule struct{}

func (underscoreRule) Name() string { return "local_prefix" } // want `name "local_prefix" is not kebab-case`

// dupRule: collides with goodRule's name.
type dupRule struct{}

func (dupRule) Name() string { return "coalesce" } // want `duplicate rule name "coalesce"`

// computedRule: the name must be a literal, not an expression.
type computedRule struct{}

var prefix = "sync"

func (computedRule) Name() string { return prefix + "-skip" } // want `Name\(\) must be a single`

// helper is not a rule type (no Rule suffix): ignored even with a bad name.
type helper struct{}

func (helper) Name() string { return "Not Kebab" }
