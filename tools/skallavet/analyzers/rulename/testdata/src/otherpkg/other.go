// Fixture: outside skalla/internal/plan the analyzer stays silent.
package otherpkg

type noisyRule struct{}

func (noisyRule) Name() string { return "Definitely Not Kebab" }
