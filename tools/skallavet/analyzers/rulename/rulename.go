// Package rulename enforces the Egil v2 planner's rule-naming contract:
// every optimizer rule in skalla/internal/plan declares its name as a
// kebab-case string literal, unique within the package. The name is not
// cosmetic — it is the `rule` label on skalla_plan_rule_applied_total, the
// token accepted by -plan-mode rules=..., and an input to the plan
// fingerprint, so a duplicate or computed name silently corrupts metrics,
// CLI selections, and fingerprint stability at once.
//
// A rule is any type whose name ends in "Rule" carrying a `Name() string`
// method. Three patterns are flagged:
//
//  1. a Name method whose body is not a single `return "literal"` — names
//     must be static so selections and fingerprints are decidable;
//  2. a literal that is not kebab-case (^[a-z][a-z0-9]*(-[a-z0-9]+)*$);
//  3. two rule types returning the same literal.
package rulename

import (
	"go/ast"
	"regexp"
	"strings"

	"skalla/tools/skallavet/analysis"
)

// PlanPackage is the package under enforcement.
const PlanPackage = "skalla/internal/plan"

// kebab is the required shape of a rule name: lower-case alphanumeric words
// joined by single dashes. It matches Prometheus label values and the
// -plan-mode rules=... grammar.
var kebab = regexp.MustCompile(`^[a-z][a-z0-9]*(-[a-z0-9]+)*$`)

// Analyzer is the rulename rule.
var Analyzer = &analysis.Analyzer{
	Name: "rulename",
	Doc:  "planner rules must declare unique kebab-case string-literal names",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != PlanPackage {
		return nil
	}
	seen := map[string]string{} // name literal → receiver type that claimed it
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "Name" || fn.Recv == nil {
				continue
			}
			recv := receiverTypeName(fn.Recv)
			if !strings.HasSuffix(recv, "Rule") {
				continue
			}
			lit, ok := singleStringReturn(fn)
			if !ok {
				pass.Reportf(fn.Pos(),
					"rule %s: Name() must be a single `return \"<literal>\"` — computed names break -plan-mode selections and plan fingerprints", recv)
				continue
			}
			name := strings.Trim(lit.Value, `"`)
			if !kebab.MatchString(name) {
				pass.Reportf(lit.Pos(),
					"rule %s: name %q is not kebab-case (want %s) — it is the skalla_plan_rule_applied_total label and the rules= token", recv, name, kebab)
			}
			if prev, dup := seen[name]; dup {
				pass.Reportf(lit.Pos(),
					"rule %s: duplicate rule name %q (already claimed by %s) — selections and metrics could not tell them apart", recv, name, prev)
				continue
			}
			seen[name] = recv
		}
	}
	return nil
}

// receiverTypeName unwraps the receiver's base type identifier ("" when the
// receiver is not a named type).
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// singleStringReturn matches a body of exactly `return "<literal>"`.
func singleStringReturn(fn *ast.FuncDecl) (*ast.BasicLit, bool) {
	if fn.Body == nil || len(fn.Body.List) != 1 {
		return nil, false
	}
	ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil, false
	}
	lit, ok := ret.Results[0].(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return nil, false
	}
	return lit, true
}
