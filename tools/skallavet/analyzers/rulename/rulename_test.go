package rulename_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/rulename"
	"skalla/tools/skallavet/internal/checktest"
)

func TestPlanPackage(t *testing.T) {
	checktest.Run(t, rulename.Analyzer, "skalla/internal/plan")
}

func TestOtherPackageIgnored(t *testing.T) {
	checktest.Run(t, rulename.Analyzer, "otherpkg")
}
