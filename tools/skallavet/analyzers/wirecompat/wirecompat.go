// Package wirecompat enforces gob wire compatibility for Skalla's
// coordinator↔site protocol. gob identifies struct fields by name and
// tolerates fields the peer lacks, so the Request/Response envelopes stay
// compatible with old peers if and only if they grow append-only: renaming,
// removing, retyping, or reordering an existing field changes what an old
// binary decodes (or how this one decodes an old stream).
//
// The contract is a committed golden fingerprint, one line per field:
//
//	Request.Kind transport.ReqKind
//	Request.QueryID string
//	...
//
// A package opts in by carrying testdata/wire_schema.golden next to its
// sources. The analyzer extracts each listed struct's field list from the
// type-checked package and requires the golden to be an exact prefix of it:
// new fields may be appended (the companion unit test in internal/transport
// holds the golden exactly up to date via its -update flag), but any edit
// to the committed prefix fails the build.
package wirecompat

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"skalla/tools/skallavet/analysis"
)

// GoldenFile is the per-package schema contract file, relative to the
// package directory.
const GoldenFile = "testdata/wire_schema.golden"

// Analyzer is the wirecompat rule.
var Analyzer = &analysis.Analyzer{
	Name: "wirecompat",
	Doc:  "gob wire structs must grow append-only against their committed golden schema fingerprint",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := filepath.Join(pass.Dir, GoldenFile)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // package has no wire-schema contract
		}
		return err
	}
	if len(pass.Files) == 0 {
		return nil
	}
	reportPos := pass.Files[0].Name.Pos()

	golden, order, err := parseGolden(string(data))
	if err != nil {
		pass.Reportf(reportPos, "wire schema golden %s: %v", path, err)
		return nil
	}
	for _, structName := range order {
		want := golden[structName]
		got, pos, err := structFields(pass, structName)
		if err != nil {
			pass.Reportf(reportPos, "wire schema golden %s: %v", path, err)
			continue
		}
		if len(got) < len(want) {
			pass.Reportf(pos,
				"wire struct %s has %d fields but the committed schema fingerprint lists %d: removing fields breaks old peers (see %s)",
				structName, len(got), len(want), GoldenFile)
			continue
		}
		for i, w := range want {
			if got[i] != w {
				pass.Reportf(pos,
					"wire struct %s field %d is %q but the committed schema fingerprint says %q: existing fields are append-only — never reorder, rename, retype, or remove them (see %s)",
					structName, i, got[i], w, GoldenFile)
				break
			}
		}
	}
	return nil
}

// parseGolden reads the fingerprint: "Struct.Field type" lines, '#'
// comments, blank lines ignored. Returns fields per struct plus the struct
// order of first appearance.
func parseGolden(data string) (map[string][]string, []string, error) {
	fields := map[string][]string{}
	var order []string
	for i, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, typ, ok := strings.Cut(line, " ")
		structName, fieldName, dotOK := strings.Cut(name, ".")
		if !ok || !dotOK || structName == "" || fieldName == "" {
			return nil, nil, fmt.Errorf("line %d: want \"Struct.Field type\", got %q", i+1, line)
		}
		if _, seen := fields[structName]; !seen {
			order = append(order, structName)
		}
		fields[structName] = append(fields[structName], fieldName+" "+strings.TrimSpace(typ))
	}
	return fields, order, nil
}

// structFields extracts "Name type" lines for the named struct from the
// type-checked package, in declaration order, using package-name
// qualification so the strings match reflect.Type.String output.
func structFields(pass *analysis.Pass, name string) ([]string, token.Pos, error) {
	obj := pass.Pkg.Scope().Lookup(name)
	if obj == nil {
		return nil, token.NoPos, fmt.Errorf("struct %s not found in package %s", name, pass.Pkg.Path())
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, token.NoPos, fmt.Errorf("%s is not a struct", name)
	}
	qual := func(p *types.Package) string { return p.Name() }
	out := make([]string, st.NumFields())
	for i := range out {
		f := st.Field(i)
		out[i] = f.Name() + " " + types.TypeString(f.Type(), qual)
	}
	return out, obj.Pos(), nil
}
