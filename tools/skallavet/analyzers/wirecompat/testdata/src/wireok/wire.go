// Fixture: wire structs matching their committed fingerprint, including one
// field appended after the fingerprint was committed (append-only growth is
// the whole point of the rule).
package wireok

type ReqKind int

type Request struct {
	Kind    ReqKind
	QueryID string
	Retry   bool // appended since the golden was committed: allowed
}

type Response struct {
	Err  string
	Rows []string
}
