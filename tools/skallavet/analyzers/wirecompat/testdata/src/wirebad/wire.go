// Fixture: every way to break the append-only wire contract — a retyped
// field, a removed field, and a struct deleted outright.
package wirebad // want `struct Legacy not found`

type Request struct { // want `wire struct Request field 0 is "Kind string" but the committed schema fingerprint says "Kind int"`
	Kind    string // retyped: the golden says int
	QueryID string
}

type Response struct { // want `wire struct Response has 1 fields but the committed schema fingerprint lists 2`
	Err string
}
