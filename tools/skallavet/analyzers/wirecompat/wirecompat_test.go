package wirecompat_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/wirecompat"
	"skalla/tools/skallavet/internal/checktest"
)

func TestGoldenMatchesWithAppend(t *testing.T) {
	checktest.Run(t, wirecompat.Analyzer, "wireok")
}

func TestBrokenContract(t *testing.T) {
	checktest.Run(t, wirecompat.Analyzer, "wirebad")
}
