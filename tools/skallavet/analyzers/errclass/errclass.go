// Package errclass enforces retry-safe error classification: every error
// that can reach the coordinator's withRetry driver must be *classified* —
// either wrapped as a permanentError (retrying cannot fix it, and repeating
// the attempt could re-apply a non-idempotent failure) or derived from a
// whitelisted retryable source. An unclassified error silently lands in the
// "retryable" bucket, which is exactly how a data-corruption error becomes
// a retried data-corruption error.
//
// Retry-scoped code is found syntactically and through facts:
//
//   - a function literal passed to (*Coordinator).withRetry;
//   - a literal or named function passed in a func-typed argument to a
//     *retry forwarder* — a function (like broadcast) that invokes one of
//     its func parameters inside retry-scoped code; forwarder-ness crosses
//     package boundaries via the exported fact;
//   - any literal defined inside retry-scoped code (stream callbacks whose
//     errors propagate to the attempt result).
//
// Within retry-scoped code, every returned error expression must resolve to
// an OK source: nil, ctx.Err() / the context sentinel errors, a
// &permanentError{...} wrap, a call on a skalla/internal/transport type
// (site RPCs are the retryable class by design), a call to a function whose
// own returns are all classified (computed here, exported as a fact), a
// call through a func-typed value (classified at whatever site supplied
// it), or fmt.Errorf with %w wrapping an OK error. Fresh errors
// (errors.New, fmt.Errorf without %w) and calls to unclassified functions
// are flagged at the return site.
package errclass

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"skalla/tools/skallavet/analysis"
)

const (
	corePath      = "skalla/internal/core"
	transportPath = "skalla/internal/transport"
)

// errClassFact is the exported classification of a function.
type errClassFact struct {
	// Classified: every error return resolves to an OK source.
	Classified bool `json:"classified,omitempty"`
	// ForwardParams lists indices of func-typed parameters the function
	// invokes inside retry-scoped code.
	ForwardParams []int `json:"forwardParams,omitempty"`
}

func (*errClassFact) AFact() {}

// Analyzer is the errclass rule.
var Analyzer = &analysis.Analyzer{
	Name:      "errclass",
	Doc:       "errors reaching withRetry must be classified permanent or derived from a whitelisted retryable source",
	Run:       run,
	FactTypes: []analysis.Fact{(*errClassFact)(nil)},
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		classified: map[types.Object]bool{},
		forwards:   map[types.Object][]int{},
		decls:      map[types.Object]*ast.FuncDecl{},
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					c.decls[obj] = fd
				}
			}
		}
	}

	// Fixpoint 1: classified functions (a function calling a classified
	// same-package helper classifies once the helper does).
	for changed := true; changed; {
		changed = false
		for obj, fd := range c.decls {
			if c.classified[obj] {
				continue
			}
			if c.fnClassified(fd) {
				c.classified[obj] = true
				changed = true
			}
		}
	}
	// Fixpoint 2: retry forwarders (forwarding can chain through local
	// helpers before reaching withRetry).
	for changed := true; changed; {
		changed = false
		for obj, fd := range c.decls {
			idxs := c.forwardParams(fd)
			if len(idxs) > len(c.forwards[obj]) {
				c.forwards[obj] = idxs
				changed = true
			}
		}
	}
	for obj := range c.decls {
		fact := &errClassFact{Classified: c.classified[obj], ForwardParams: c.forwards[obj]}
		if fact.Classified || len(fact.ForwardParams) > 0 {
			pass.ExportObjectFact(obj, fact)
		}
	}

	// Report inside every retry-scoped literal, and on named functions
	// handed into retry positions.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, idx := range c.retryFnArgs(call) {
				if idx >= len(call.Args) {
					continue
				}
				c.checkRetryArg(call.Args[idx])
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass       *analysis.Pass
	classified map[types.Object]bool
	forwards   map[types.Object][]int
	decls      map[types.Object]*ast.FuncDecl
}

// retryFnArgs returns the argument indices of call that enter the retry
// path: the final fn of withRetry itself, or the forwarded func params of a
// forwarder (local map or imported fact).
func (c *checker) retryFnArgs(call *ast.CallExpr) []int {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := c.pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if fn.Name() == "withRetry" && fn.Pkg().Path() == corePath {
		return []int{len(call.Args) - 1}
	}
	if fn.Pkg().Path() == c.pass.Pkg.Path() {
		if obj, ok := c.lookupLocal(fn); ok {
			return c.forwards[obj]
		}
		return nil
	}
	var fact errClassFact
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.ForwardParams
	}
	return nil
}

// lookupLocal maps a used *types.Func back to the Defs object keying the
// local maps.
func (c *checker) lookupLocal(fn *types.Func) (types.Object, bool) {
	if _, ok := c.decls[fn]; ok {
		return fn, true
	}
	return nil, false
}

// checkRetryArg validates one expression flowing into a retry fn position.
func (c *checker) checkRetryArg(arg ast.Expr) {
	switch arg := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		c.checkScopedLit(arg)
	case *ast.Ident, *ast.SelectorExpr:
		var id *ast.Ident
		if sel, ok := arg.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else {
			id = arg.(*ast.Ident)
		}
		fn, ok := c.pass.Info.Uses[id].(*types.Func)
		if !ok {
			return // a func-typed variable: classified where it was built
		}
		if c.fnIsClassified(fn) {
			return
		}
		c.pass.Reportf(arg.Pos(),
			"%s enters the retry path but returns unclassified errors; wrap permanent failures in &permanentError{...} or derive errors from a whitelisted retryable source",
			fn.Name())
	}
}

// fnIsClassified resolves a named function's classification locally or via
// fact.
func (c *checker) fnIsClassified(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == c.pass.Pkg.Path() {
		return c.classified[fn]
	}
	var fact errClassFact
	return c.pass.ImportObjectFact(fn, &fact) && fact.Classified
}

// checkScopedLit reports every unclassified error return in a retry-scoped
// literal, including literals nested inside it.
func (c *checker) checkScopedLit(lit *ast.FuncLit) {
	c.checkReturns(lit.Type, lit.Body, true)
}

// checkReturns validates the error returns of one function body. When
// nested is true, literals defined inside are retry-scoped too and are
// checked with their own signatures.
func (c *checker) checkReturns(ftyp *ast.FuncType, body *ast.BlockStmt, nested bool) bool {
	ok := true
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if nested {
				if !c.checkReturns(n.Type, n.Body, true) {
					ok = false
				}
			}
			return false
		case *ast.ReturnStmt:
			if !c.checkReturnStmt(ftyp, n, nested) {
				ok = false
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return ok
}

// checkReturnStmt classifies the error result of one return. Reports (and
// returns false) only when report is true; the classification fixpoint
// calls it silently.
func (c *checker) checkReturnStmt(ftyp *ast.FuncType, ret *ast.ReturnStmt, report bool) bool {
	errIdx, errObj := errorResult(c.pass, ftyp)
	if errIdx < 0 {
		return true
	}
	var expr ast.Expr
	switch {
	case len(ret.Results) == 0:
		// Naked return: classify the named result variable.
		if errObj == nil {
			return true
		}
		if c.okVar(errObj, map[types.Object]bool{}) {
			return true
		}
		if report {
			c.reportReturn(ret.Pos())
		}
		return false
	case len(ret.Results) == 1 && errIdx > 0:
		// Tuple forward: `return f(...)`.
		expr = ret.Results[0]
	case errIdx < len(ret.Results):
		expr = ret.Results[errIdx]
	default:
		return true
	}
	if c.okErr(expr, map[types.Object]bool{}) {
		return true
	}
	if report {
		c.reportReturn(expr.Pos())
	}
	return false
}

func (c *checker) reportReturn(pos token.Pos) {
	c.pass.Reportf(pos,
		"unclassified error on a retry path: retrying may repeat a non-idempotent failure; wrap it in &permanentError{...} or derive it from a whitelisted retryable source")
}

// fnClassified decides whether a declared function's own error returns are
// all classified (no reporting — feeds the fixpoint and the fact).
func (c *checker) fnClassified(fd *ast.FuncDecl) bool {
	if idx, _ := errorResult(c.pass, fd.Type); idx < 0 {
		return false // no error result: never meaningful in error position
	}
	ok := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested literal returns are not this function's
		case *ast.ReturnStmt:
			if !c.checkReturnStmt(fd.Type, n, false) {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// forwardParams finds func-typed parameters of fd that are invoked inside
// fd's retry-scoped literals (arguments to withRetry or to other
// forwarders, plus their nested literals).
func (c *checker) forwardParams(fd *ast.FuncDecl) []int {
	params := map[types.Object]int{}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := c.pass.Info.Defs[name]; obj != nil {
					if _, ok := obj.Type().Underlying().(*types.Signature); ok {
						params[obj] = i
					}
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	if len(params) == 0 {
		return nil
	}
	found := map[int]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, idx := range c.retryFnArgs(call) {
			if idx < 0 || idx >= len(call.Args) {
				continue
			}
			lit, ok := ast.Unparen(call.Args[idx]).(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(lit, func(m ast.Node) bool {
				inner, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(inner.Fun).(*ast.Ident); ok {
					if idx, ok := params[c.pass.Info.Uses[id]]; ok {
						found[idx] = true
					}
				}
				return true
			})
		}
		return true
	})
	if len(found) == 0 {
		return nil
	}
	out := make([]int, 0, len(found))
	for idx := range found {
		out = append(out, idx)
	}
	// insertion sort — keep facts deterministic
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// errorResult locates the error result in a signature: its index, and the
// named result object when present.
func errorResult(pass *analysis.Pass, ftyp *ast.FuncType) (int, types.Object) {
	if ftyp.Results == nil {
		return -1, nil
	}
	idx := 0
	lastIdx, lastObjIdx := -1, -1
	var obj types.Object
	for _, field := range ftyp.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if tv, ok := pass.Info.Types[field.Type]; ok && isErrorType(tv.Type) {
			lastIdx = idx + n - 1
			if len(field.Names) > 0 {
				lastObjIdx = len(field.Names) - 1
				obj = pass.Info.Defs[field.Names[lastObjIdx]]
			} else {
				obj = nil
			}
		}
		idx += n
	}
	return lastIdx, obj
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// okErr classifies one error expression.
func (c *checker) okErr(e ast.Expr, seen map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		obj := c.pass.Info.Uses[e]
		if obj == nil {
			return false
		}
		return c.okVar(obj, seen)
	case *ast.CallExpr:
		return c.okErrCall(e, seen)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if lit, ok := e.X.(*ast.CompositeLit); ok {
				return c.isPermanent(lit)
			}
		}
	case *ast.CompositeLit:
		return c.isPermanent(e)
	case *ast.SelectorExpr:
		// context.Canceled / context.DeadlineExceeded sentinels.
		if v, ok := c.pass.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Pkg().Path() == "context" &&
			(v.Name() == "Canceled" || v.Name() == "DeadlineExceeded") {
			return true
		}
	}
	return false
}

// okVar classifies a variable: every assignment to it must be an OK source.
func (c *checker) okVar(obj types.Object, seen map[types.Object]bool) bool {
	if seen[obj] {
		return true // cycle: optimistic, the other assignments decide
	}
	seen[obj] = true
	assigns := c.assignmentsTo(obj)
	if len(assigns) == 0 {
		return false
	}
	for _, e := range assigns {
		if !c.okErr(e, seen) {
			return false
		}
	}
	return true
}

// assignmentsTo finds every expression assigned to obj anywhere in the
// package (obj is local, so this resolves within its declaring file).
func (c *checker) assignmentsTo(obj types.Object) []ast.Expr {
	var out []ast.Expr
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || (c.pass.Info.Defs[id] != obj && c.pass.Info.Uses[id] != obj) {
					continue
				}
				if len(as.Rhs) == len(as.Lhs) {
					out = append(out, as.Rhs[i])
				} else if len(as.Rhs) == 1 {
					out = append(out, as.Rhs[0]) // tuple: classify the call
				}
			}
			return true
		})
	}
	return out
}

// okErrCall classifies a call in error position.
func (c *checker) okErrCall(call *ast.CallExpr, seen map[types.Object]bool) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := c.pass.Info.Uses[fun].(type) {
		case *types.Func:
			return c.namedCallOK(obj, call, seen)
		case *types.Var:
			// Calling through a func value (callback param): classified at
			// whatever site supplied the callback.
			return true
		}
	case *ast.SelectorExpr:
		if fn, ok := c.pass.Info.Uses[fun.Sel].(*types.Func); ok {
			// ctx.Err() and friends.
			if fn.Name() == "Err" {
				if tv, ok := c.pass.Info.Types[fun.X]; ok && isContext(tv.Type) {
					return true
				}
			}
			if recvInTransport(fn) {
				return true
			}
			return c.namedCallOK(fn, call, seen)
		}
		if _, ok := c.pass.Info.Uses[fun.Sel].(*types.Var); ok {
			return true // func-valued field/closure
		}
	}
	return false
}

// namedCallOK classifies a call to a named function: the fmt/errors
// builtins get bespoke rules, everything else resolves through the
// classification fixpoint or facts.
func (c *checker) namedCallOK(fn *types.Func, call *ast.CallExpr, seen map[types.Object]bool) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "errors":
		return false // errors.New / errors.Join: fresh, unclassified
	case "fmt":
		if fn.Name() != "Errorf" || len(call.Args) == 0 {
			return false
		}
		format, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || !strings.Contains(format.Value, "%w") {
			return false
		}
		// %w-wrapping preserves classification iff the wrapped errors are
		// themselves OK.
		for _, arg := range call.Args[1:] {
			if tv, ok := c.pass.Info.Types[arg]; ok && isErrorType(tv.Type) {
				if !c.okErr(arg, seen) {
					return false
				}
			}
		}
		return true
	}
	return c.fnIsClassified(fn)
}

// isPermanent matches the permanentError composite from core.
func (c *checker) isPermanent(lit *ast.CompositeLit) bool {
	tv, ok := c.pass.Info.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "permanentError" && obj.Pkg() != nil && obj.Pkg().Path() == corePath
}

func recvInTransport(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == transportPath
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
