package errclass_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/errclass"
	"skalla/tools/skallavet/internal/checktest"
)

func TestErrClass(t *testing.T) {
	checktest.Run(t, errclass.Analyzer, "skalla/internal/core")
}
