package core

import (
	"context"
	"errors"
	"fmt"

	"skalla/internal/helpers"
	"skalla/internal/transport"
)

// Every return classified: transport call (wrapped with %w), permanent
// wrap, context error.
func goodRound(ctx context.Context, c *Coordinator, s transport.Site) error {
	return c.withRetry(ctx, 0, func(actx context.Context, attempt int) error {
		n, err := s.EvalBase(actx, "q")
		if err != nil {
			return fmt.Errorf("site eval: %w", err)
		}
		if n < 0 {
			return &permanentError{errors.New("negative cardinality")}
		}
		return actx.Err()
	})
}

// Fresh unclassified error inside the retry attempt.
func badRound(ctx context.Context, c *Coordinator) error {
	return c.withRetry(ctx, 1, func(actx context.Context, attempt int) error {
		return errors.New("flaky") // want `unclassified error on a retry path`
	})
}

// fmt.Errorf without %w mints a fresh error even when its input was
// classified.
func badWrap(ctx context.Context, c *Coordinator, s transport.Site) error {
	return c.withRetry(ctx, 1, func(actx context.Context, attempt int) error {
		if _, err := s.EvalBase(actx, "q"); err != nil {
			return fmt.Errorf("site eval: %v", err) // want `unclassified error on a retry path`
		}
		return nil
	})
}

// The stream callback's errors surface as the attempt error: literals
// nested inside retry-scoped code are retry-scoped too.
func nestedEmit(ctx context.Context, c *Coordinator, s transport.Site) error {
	return c.withRetry(ctx, 2, func(actx context.Context, attempt int) error {
		return s.Stream(actx, func(block int) error {
			if block < 0 {
				return errors.New("bad block") // want `unclassified error on a retry path`
			}
			return actx.Err()
		})
	})
}

// broadcast forwards f into the retry path; the exported fact carries this
// to every caller.
func broadcast(ctx context.Context, c *Coordinator, f func(ctx context.Context) error) error {
	return c.withRetry(ctx, 3, func(actx context.Context, attempt int) error {
		return f(actx)
	})
}

func viaForwarderGood(ctx context.Context, c *Coordinator, s transport.Site) error {
	return broadcast(ctx, c, func(fctx context.Context) error {
		_, err := s.EvalBase(fctx, "q")
		return err
	})
}

func viaForwarderBad(ctx context.Context, c *Coordinator) error {
	return broadcast(ctx, c, func(fctx context.Context) error {
		return errors.New("oops") // want `unclassified error on a retry path`
	})
}

// wrapHelpers is classified: it only rewraps a classified error with %w.
func wrapHelpers(ctx context.Context) error {
	if err := helpers.Classified(ctx); err != nil {
		return fmt.Errorf("helper: %w", err)
	}
	return nil
}

// Named functions handed into the retry path resolve through facts:
// helpers.Classified and the local wrapHelpers pass, helpers.Fetch does
// not.
func namedFns(ctx context.Context, c *Coordinator) {
	_ = broadcast(ctx, c, helpers.Classified)
	_ = broadcast(ctx, c, wrapHelpers)
	_ = broadcast(ctx, c, helpers.Fetch) // want `Fetch enters the retry path but returns unclassified errors`
}
