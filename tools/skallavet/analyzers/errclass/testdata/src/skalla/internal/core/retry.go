// Fixture: a miniature of the real core retry driver. The analyzer keys on
// the withRetry name and the permanentError type in this package path.
package core

import "context"

type Coordinator struct{}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func (c *Coordinator) withRetry(ctx context.Context, site int, fn func(ctx context.Context, attempt int) error) error {
	for attempt := 0; ; attempt++ {
		err := fn(ctx, attempt)
		if err == nil {
			return nil
		}
		if _, ok := err.(*permanentError); ok {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}
