// Fixture: helper package whose classification must cross the package
// boundary via facts.
package helpers

import (
	"context"
	"errors"
)

// Classified only ever returns context errors: safe in the retry path.
func Classified(ctx context.Context) error {
	return ctx.Err()
}

// Fetch returns a fresh unclassified error; passing it into a retry path
// must be flagged at the call site.
func Fetch(ctx context.Context) error {
	return errors.New("fetch failed")
}
