// Fixture: a miniature of the real transport package. Errors produced by
// Site calls are the whitelisted retryable class.
package transport

import "context"

type Site interface {
	EvalBase(ctx context.Context, q string) (int, error)
	Stream(ctx context.Context, emit func(block int) error) error
}
