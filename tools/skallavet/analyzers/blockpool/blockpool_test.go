package blockpool_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/blockpool"
	"skalla/tools/skallavet/internal/checktest"
)

func TestPoolProtocol(t *testing.T) {
	checktest.Run(t, blockpool.Analyzer, "pooluser")
}
