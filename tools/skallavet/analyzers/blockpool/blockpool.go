// Package blockpool enforces the pooled-block ownership protocol of the
// data plane: every block obtained from relation.(*BlockPool).Get must be
// released exactly once — either directly via relation.Recycle, or by
// transferring ownership (handing the block to another function such as an
// emit sink or a stage's Add, returning it, or storing it into a structure
// whose release path owns it, like hStage.pool). A block that a function
// both acquires and forgets leaks pooled storage out of the sync.Pool; a
// block recycled twice corrupts the pool with aliased tuple storage.
//
// The analysis is per-function and deliberately conservative in what it
// calls a transfer:
//
//   - leak: the Get result is bound to a variable that is never passed to
//     Recycle, never passed to any other call, never returned, and never
//     stored anywhere — i.e. provably dropped on every path;
//   - double recycle: two relation.Recycle calls on the same variable in
//     the same statement list with no reassignment in between — provably
//     both execute.
//
// Method calls *on* the block (block.Len(), block.Schema) are reads, not
// transfers, so "measure it and drop it" still flags.
package blockpool

import (
	"go/ast"
	"go/types"

	"skalla/tools/skallavet/analysis"
)

// relationPath is the package that owns the pool protocol.
const relationPath = "skalla/internal/relation"

// Analyzer is the blockpool rule.
var Analyzer = &analysis.Analyzer{
	Name: "blockpool",
	Doc:  "pooled blocks from BlockPool.Get must be recycled or ownership-transferred; never recycled twice",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type acquisition struct {
	obj      types.Object
	pos      ast.Expr // the Get call, for reporting
	recycles []*ast.CallExpr
	moved    bool // ownership left this function on some path
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	parents := buildParents(fd.Body)

	// Pass 1: find `x := pool.Get(...)` bindings.
	var acqs []*acquisition
	byObj := map[types.Object]*acquisition{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isPoolGet(pass, call) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if _, rebound := byObj[obj]; rebound {
				// `blk = pool.Get(...)` re-binding an already-tracked variable:
				// keep one acquisition per variable so releases on any binding
				// count, and assignedBetween suppresses the double-recycle
				// check across the re-binding.
				continue
			}
			a := &acquisition{obj: obj, pos: call}
			acqs = append(acqs, a)
			byObj[obj] = a
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	// Pass 2: classify every other use of each acquired variable.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		a, tracked := byObj[obj]
		if !tracked {
			return true
		}
		parent := parents[id]
		switch p := parent.(type) {
		case *ast.CallExpr:
			if p.Fun == ast.Expr(id) {
				return true // calling the variable, not passing it
			}
			if isRecycle(pass, p) {
				a.recycles = append(a.recycles, p)
			} else {
				a.moved = true // argument to some call: ownership transferred
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
			a.moved = true
		case *ast.UnaryExpr:
			if p.Op.String() == "&" {
				a.moved = true
			}
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if rhs == ast.Expr(id) {
					a.moved = true // aliased or stored somewhere
				}
			}
		case *ast.FuncLit:
			a.moved = true
		default:
			// Reads through the variable (selectors, index, range) keep
			// ownership here; enclosing closures still count as moves.
			for anc := parent; anc != nil; anc = parents[anc] {
				if _, isLit := anc.(*ast.FuncLit); isLit {
					a.moved = true
					break
				}
			}
		}
		return true
	})

	for _, a := range acqs {
		if len(a.recycles) == 0 && !a.moved {
			pass.Reportf(a.pos.Pos(),
				"pooled block %s leaks: no relation.Recycle and no ownership transfer on any path (stage it, emit it, or recycle it)",
				a.obj.Name())
		}
		reportDoubleRecycles(pass, a, parents)
	}
}

// reportDoubleRecycles flags two Recycle calls on the same variable that
// provably both execute: same statement list, no reassignment in between.
func reportDoubleRecycles(pass *analysis.Pass, a *acquisition, parents map[ast.Node]ast.Node) {
	type site struct {
		call  *ast.CallExpr
		block *ast.BlockStmt
		idx   int
	}
	var sites []site
	for _, call := range a.recycles {
		if blk, idx, ok := enclosingStmt(call, parents); ok {
			sites = append(sites, site{call, blk, idx})
		}
	}
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			s1, s2 := sites[i], sites[j]
			if s1.block != s2.block {
				continue
			}
			lo, hi := s1.idx, s2.idx
			var second *ast.CallExpr = s2.call
			if lo > hi {
				lo, hi = hi, lo
				second = s1.call
			}
			if !assignedBetween(pass, a.obj, s1.block.List[lo+1:hi]) {
				pass.Reportf(second.Pos(),
					"pooled block %s recycled twice on the same path: the second Recycle corrupts the pool with aliased storage",
					a.obj.Name())
			}
		}
	}
}

func assignedBetween(pass *analysis.Pass, obj types.Object, stmts []ast.Stmt) bool {
	for _, st := range stmts {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj {
						found = true
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// enclosingStmt walks up to the nearest BlockStmt and returns the index of
// the top-level statement within it that contains n.
func enclosingStmt(n ast.Node, parents map[ast.Node]ast.Node) (*ast.BlockStmt, int, bool) {
	child := n
	for anc := parents[n]; anc != nil; child, anc = anc, parents[anc] {
		blk, ok := anc.(*ast.BlockStmt)
		if !ok {
			continue
		}
		for i, st := range blk.List {
			if st == child {
				return blk, i, true
			}
		}
		return nil, 0, false
	}
	return nil, 0, false
}

func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isPoolGet matches relation.(*BlockPool).Get.
func isPoolGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Get" || fn.Pkg() == nil || fn.Pkg().Path() != relationPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "BlockPool"
}

// isRecycle matches relation.Recycle(x).
func isRecycle(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	return ok && fn.Name() == "Recycle" && fn.Pkg() != nil && fn.Pkg().Path() == relationPath
}
