// Package blockpool enforces the pooled-block ownership protocol of the
// data plane: every block obtained from relation.(*BlockPool).Get must be
// released exactly once — either directly via relation.Recycle, or by
// transferring ownership (handing the block to another function such as an
// emit sink or a stage's Add, returning it, or storing it into a structure
// whose release path owns it, like hStage.pool). A block that a function
// both acquires and forgets leaks pooled storage out of the sync.Pool; a
// block recycled twice corrupts the pool with aliased tuple storage.
//
// The analysis is per-function and deliberately conservative in what it
// calls a transfer:
//
//   - leak: the Get result is bound to a variable that is never passed to
//     Recycle, never passed to any other call, never returned, and never
//     stored anywhere — i.e. provably dropped on every path;
//   - double recycle: a second relation.Recycle of the same variable is
//     reachable from a first one on some control-flow path with no
//     reassignment in between. The check runs on the analysis/flow CFG, so
//     it sees through branches and catches a Recycle inside a loop body
//     that re-executes on the next iteration without a fresh Get.
//
// Method calls *on* the block (block.Len(), block.Schema) are reads, not
// transfers, so "measure it and drop it" still flags.
package blockpool

import (
	"go/ast"
	"go/types"

	"skalla/tools/skallavet/analysis"
	"skalla/tools/skallavet/analysis/flow"
)

// relationPath is the package that owns the pool protocol.
const relationPath = "skalla/internal/relation"

// Analyzer is the blockpool rule.
var Analyzer = &analysis.Analyzer{
	Name: "blockpool",
	Doc:  "pooled blocks from BlockPool.Get must be recycled or ownership-transferred; never recycled twice",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type acquisition struct {
	obj      types.Object
	pos      ast.Expr // the Get call, for reporting
	recycles []*ast.CallExpr
	moved    bool // ownership left this function on some path
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	parents := buildParents(fd.Body)

	// Pass 1: find `x := pool.Get(...)` bindings.
	var acqs []*acquisition
	byObj := map[types.Object]*acquisition{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isPoolGet(pass, call) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if _, rebound := byObj[obj]; rebound {
				// `blk = pool.Get(...)` re-binding an already-tracked variable:
				// keep one acquisition per variable so releases on any binding
				// count, and assignedBetween suppresses the double-recycle
				// check across the re-binding.
				continue
			}
			a := &acquisition{obj: obj, pos: call}
			acqs = append(acqs, a)
			byObj[obj] = a
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	// Pass 2: classify every other use of each acquired variable.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		a, tracked := byObj[obj]
		if !tracked {
			return true
		}
		parent := parents[id]
		switch p := parent.(type) {
		case *ast.CallExpr:
			if p.Fun == ast.Expr(id) {
				return true // calling the variable, not passing it
			}
			if isRecycle(pass, p) {
				a.recycles = append(a.recycles, p)
			} else {
				a.moved = true // argument to some call: ownership transferred
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
			a.moved = true
		case *ast.UnaryExpr:
			if p.Op.String() == "&" {
				a.moved = true
			}
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if rhs == ast.Expr(id) {
					a.moved = true // aliased or stored somewhere
				}
			}
		case *ast.FuncLit:
			a.moved = true
		default:
			// Reads through the variable (selectors, index, range) keep
			// ownership here; enclosing closures still count as moves.
			for anc := parent; anc != nil; anc = parents[anc] {
				if _, isLit := anc.(*ast.FuncLit); isLit {
					a.moved = true
					break
				}
			}
		}
		return true
	})

	// Per-function CFGs: the declared body plus one per function literal.
	// A deferred Recycle lives in no graph node (flow.Shallow keeps defers
	// opaque), so it never participates in the double-recycle check —
	// whether it runs on a path the other Recycle took is timing we cannot
	// decide intraprocedurally.
	graphs := []*flow.Graph{flow.New(fd.Body)}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			graphs = append(graphs, flow.New(lit.Body))
		}
		return true
	})

	for _, a := range acqs {
		if len(a.recycles) == 0 && !a.moved {
			pass.Reportf(a.pos.Pos(),
				"pooled block %s leaks: no relation.Recycle and no ownership transfer on any path (stage it, emit it, or recycle it)",
				a.obj.Name())
		}
		for _, g := range graphs {
			reportDoubleRecycles(pass, g, a)
		}
	}
}

// reportDoubleRecycles flags a Recycle call of a's variable from which a
// second Recycle of the same variable is reachable on some path with no
// intervening reassignment — including the call itself re-executing around
// a loop back edge without a fresh Get.
func reportDoubleRecycles(pass *analysis.Pass, g *flow.Graph, a *acquisition) {
	calls := map[*ast.CallExpr]bool{}
	for _, c := range a.recycles {
		calls[c] = true
	}
	// Map CFG nodes to the Recycle call they evaluate (at most one matters).
	recycleIn := map[ast.Node]*ast.CallExpr{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			flow.Shallow(n, func(x ast.Node) bool {
				if c, ok := x.(*ast.CallExpr); ok && calls[c] {
					recycleIn[n] = c
					return false
				}
				return true
			})
		}
	}
	if len(recycleIn) == 0 {
		return
	}
	kill := func(n ast.Node) bool { return reassigns(pass, n, a.obj) }
	for n2, c2 := range recycleIn {
		is2 := func(m ast.Node) bool { return m == n2 }
		fromOther := false
		for n1 := range recycleIn {
			if n1 != n2 && g.MayReach(n1, is2, kill) {
				fromOther = true
				break
			}
		}
		switch {
		case fromOther:
			pass.Reportf(c2.Pos(),
				"pooled block %s recycled twice on the same path: the second Recycle corrupts the pool with aliased storage",
				a.obj.Name())
		case g.MayReach(n2, is2, kill):
			pass.Reportf(c2.Pos(),
				"pooled block %s recycled again on the next loop iteration without a fresh Get: the repeat Recycle corrupts the pool with aliased storage",
				a.obj.Name())
		}
	}
}

// reassigns reports whether CFG node n rebinds obj: an assignment with obj
// on the left, or a range statement binding obj as key/value.
func reassigns(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	isObj := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		return pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if isObj(lhs) {
				return true
			}
		}
	case *ast.RangeStmt:
		if s.Key != nil && isObj(s.Key) {
			return true
		}
		if s.Value != nil && isObj(s.Value) {
			return true
		}
	}
	return false
}

func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isPoolGet matches relation.(*BlockPool).Get.
func isPoolGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Get" || fn.Pkg() == nil || fn.Pkg().Path() != relationPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "BlockPool"
}

// isRecycle matches relation.Recycle(x).
func isRecycle(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	return ok && fn.Name() == "Recycle" && fn.Pkg() != nil && fn.Pkg().Path() == relationPath
}
