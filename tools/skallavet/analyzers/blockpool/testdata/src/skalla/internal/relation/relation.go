// Stub of skalla/internal/relation for analyzer fixtures: just enough
// surface for blockpool to resolve (*BlockPool).Get and Recycle by package
// path and receiver type.
package relation

type Value struct{}

type Tuple []Value

type Schema []string

type Relation struct {
	Schema Schema
	Tuples []Tuple
}

type BlockPool struct{}

func (bp *BlockPool) Get(schema Schema, rows int) *Relation {
	return &Relation{Schema: schema, Tuples: make([]Tuple, rows)}
}

func Recycle(r *Relation) {}
