// Fixture: every (*BlockPool).Get must be balanced by relation.Recycle or an
// ownership transfer; no variable may be recycled twice on one path.
package pooluser

import "skalla/internal/relation"

func leak(pool *relation.BlockPool, s relation.Schema) int {
	blk := pool.Get(s, 8) // want `pooled block blk leaks`
	return len(blk.Tuples)
}

func merge(pool *relation.BlockPool, s relation.Schema) int {
	blk := pool.Get(s, 8) // allowed: recycled below
	n := len(blk.Tuples)
	relation.Recycle(blk)
	return n
}

func stream(pool *relation.BlockPool, s relation.Schema, emit func(*relation.Relation)) {
	blk := pool.Get(s, 8) // allowed: ownership transferred to the sink
	emit(blk)
}

func handoff(pool *relation.BlockPool, s relation.Schema) *relation.Relation {
	blk := pool.Get(s, 8) // allowed: returned to the caller
	return blk
}

func stage(pool *relation.BlockPool, s relation.Schema) []*relation.Relation {
	blk := pool.Get(s, 8) // allowed: stored into the staged set
	pending := []*relation.Relation{blk}
	return pending
}

func double(pool *relation.BlockPool, s relation.Schema) {
	blk := pool.Get(s, 4)
	relation.Recycle(blk)
	relation.Recycle(blk) // want `pooled block blk recycled twice`
}

func branchy(pool *relation.BlockPool, s relation.Schema, fast bool) {
	blk := pool.Get(s, 4)
	if fast {
		relation.Recycle(blk) // allowed: exclusive with the recycle below
		return
	}
	relation.Recycle(blk)
}

func reuse(pool *relation.BlockPool, s relation.Schema) {
	blk := pool.Get(s, 4)
	relation.Recycle(blk)
	blk = pool.Get(s, 4) // allowed: re-binding separates the two recycles
	relation.Recycle(blk)
}

func keepAlive(pool *relation.BlockPool, s relation.Schema) {
	//skallavet:allow blockpool -- retained in a ring released by Close
	blk := pool.Get(s, 8)
	_ = blk.Tuples
}

type cache struct{}

func (cache) Get(s relation.Schema, rows int) *relation.Relation { return nil }

func notAPool(c cache, s relation.Schema) {
	blk := c.Get(s, 8) // allowed: Get on a non-BlockPool receiver
	_ = blk.Tuples
}

func branchThenTail(pool *relation.BlockPool, s relation.Schema, fast bool) {
	blk := pool.Get(s, 4)
	if fast {
		relation.Recycle(blk) // allowed: first release on this path
	}
	relation.Recycle(blk) // want `pooled block blk recycled twice`
}

func loopRepeat(pool *relation.BlockPool, s relation.Schema) {
	blk := pool.Get(s, 4)
	for i := 0; i < 3; i++ {
		relation.Recycle(blk) // want `pooled block blk recycled again on the next loop iteration`
	}
}

func loopFresh(pool *relation.BlockPool, s relation.Schema) {
	for i := 0; i < 3; i++ {
		blk := pool.Get(s, 4) // allowed: fresh block bound every iteration
		relation.Recycle(blk)
	}
}

func branchExclusiveSwitch(pool *relation.BlockPool, s relation.Schema, mode int) {
	blk := pool.Get(s, 4)
	switch mode {
	case 0:
		relation.Recycle(blk) // allowed: cases are exclusive
	default:
		relation.Recycle(blk)
	}
}
