// Fixture dependency: exercises cross-package goFact classification.
package golifelib

import (
	"context"
	"sync"
)

type Pump struct {
	wg sync.WaitGroup
	ch chan int
}

// Spin loops forever with no join and no context: Blocking, not Joins, not
// CtxBounded — spawning it bare is a leak.
func Spin(p *Pump) {
	for v := range p.ch {
		_ = v
	}
}

// Serve is joined via the field WaitGroup (the accept-loop pattern).
func Serve(p *Pump) {
	defer p.wg.Done()
	for v := range p.ch {
		_ = v
	}
}

// Watch is context-bounded.
func Watch(ctx context.Context, p *Pump) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-p.ch:
			_ = v
		}
	}
}
