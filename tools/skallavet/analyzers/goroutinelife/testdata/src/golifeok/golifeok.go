// Fixture: goroutines with bounded lifecycles produce no diagnostics.
package golifeok

import (
	"context"
	"sync"

	"golifelib"
)

type server struct {
	wg sync.WaitGroup
}

// Joined: local WaitGroup with Done in the goroutine and Wait here.
func fanOut(work []int, f func(int)) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < w; i++ {
				f(i)
			}
		}(w)
	}
	wg.Wait()
}

// Field WaitGroup: the Wait lives in the type's shutdown path elsewhere.
func (s *server) spawn(f func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for i := 0; i < 10; i++ {
			f()
		}
	}()
}

// Context-bounded: the goroutine watches ctx.Done.
func watch(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-tick:
				_ = v
			}
		}
	}()
}

// Closer pattern: Wait is bounded waiting, not a blocking construct.
func closer(done chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	go func() {
		wg.Wait()
		close(done)
	}()
	wg.Wait()
}

// Buffered channel: the send cannot block, no consumption obligation.
func buffered(f func() error) error {
	errs := make(chan error, 1)
	go func() {
		errs <- f()
	}()
	return <-errs
}

// Unbuffered but consumed on every path.
func consumed(f func() int) int {
	ch := make(chan int)
	go func() {
		ch <- f()
	}()
	return <-ch
}

// Scatter/gather: the counted receive loop satisfies the obligation at its
// header, so the zero-iteration CFG path is not a counterexample.
func gather(work []int, f func(int) int) int {
	ch := make(chan int)
	for _, w := range work {
		go func(w int) {
			ch <- f(w)
		}(w)
	}
	total := 0
	for i := 0; i < len(work); i++ {
		total += <-ch
	}
	return total
}

// Straight-line goroutine: terminates on its own.
func fireAndForget(f func()) {
	go func() {
		f()
	}()
}

// Named spawns with healthy facts.
func named(ctx context.Context, p *golifelib.Pump) {
	go golifelib.Serve(p)
	go golifelib.Watch(ctx, p)
}
