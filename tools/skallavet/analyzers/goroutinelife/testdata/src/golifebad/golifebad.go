// Fixture: leaked and unbounded goroutines are reported.
package golifebad

import (
	"sync"

	"golifelib"
)

// Unjoined worker loop: nothing joins it, nothing cancels it.
func workerLeak(tick chan int) {
	go func() { // want `unbounded goroutine: not joined by a WaitGroup, not bounded by a context`
		for v := range tick {
			_ = v
		}
	}()
}

// Done without Wait: the join protocol is half-built.
func halfJoin(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine calls wg.Done but nothing in this function Waits on it`
		defer wg.Done()
		for i := 0; i < 3; i++ {
			f()
		}
	}()
}

// Skippable receive: the early error return skips <-ch and strands the
// sender forever on the unbuffered channel.
func skippableReceive(f func() int, check func() error) (int, error) {
	ch := make(chan int)
	go func() { // want `goroutine may leak: its send on ch is not consumed on every path from the spawn`
		ch <- f()
	}()
	if err := check(); err != nil {
		return 0, err
	}
	return <-ch, nil
}

// Cross-package: golifelib.Spin's fact says it blocks, and the bare spawn
// neither joins nor bounds it.
func namedLeak(p *golifelib.Pump) {
	go golifelib.Spin(p) // want `unbounded goroutine: Spin blocks`
}
