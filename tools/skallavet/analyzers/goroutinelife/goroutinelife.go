// Package goroutinelife enforces that every goroutine spawned in library
// code has a bounded lifecycle: it is joined (WaitGroup Done/Wait), bounded
// by a context (it watches ctx.Done/ctx.Err), or provably terminates (its
// channel traffic is consumed on every path from the spawn).
//
// Per `go` statement, in cascade:
//
//  1. The goroutine calls Done on a WaitGroup. A field WaitGroup implies a
//     lifecycle Wait elsewhere (the server/transport accept-loop pattern)
//     and passes; a local WaitGroup must be Waited somewhere in the
//     spawning function, or the join is incomplete.
//  2. The goroutine watches its context (calls Done or Err on a
//     context.Context) — cancellation bounds it.
//  3. The goroutine sends on an unbuffered local channel: every path from
//     the spawn statement to function exit must consume that channel
//     (receive, range, select, or handing the channel to other code). A
//     path that returns early and skips the receive strands the sender
//     forever — the classic skippable-receive leak.
//  4. Otherwise, if the goroutine body contains blocking constructs (loops,
//     selects, channel operations), it is flagged as unbounded: nothing
//     joins it, nothing cancels it, and it does not provably finish.
//     Straight-line goroutines pass — they terminate on their own.
//
// A WaitGroup Wait() call is treated as bounded waiting, not as a blocking
// construct: the canonical closer goroutine `go func() { wg.Wait();
// close(ch) }()` terminates when the (separately checked) counted
// goroutines do.
//
// Named spawn targets (`go s.acceptLoop()`) resolve through goFact — the
// same classification exported per function, so the check crosses package
// boundaries via the fact system. Test files and main packages are exempt.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"

	"skalla/tools/skallavet/analysis"
	"skalla/tools/skallavet/analysis/flow"
)

// goFact classifies a named function for spawn sites in other packages.
type goFact struct {
	// Joins: the function calls Done on some WaitGroup (it participates in
	// a join protocol).
	Joins bool `json:"joins,omitempty"`
	// CtxBounded: the function watches a context's Done/Err.
	CtxBounded bool `json:"ctxBounded,omitempty"`
	// Blocking: the body contains loops, selects, or channel operations —
	// spawned unjoined and unbounded, it can live forever.
	Blocking bool `json:"blocking,omitempty"`
}

func (*goFact) AFact() {}

// Analyzer is the goroutinelife rule.
var Analyzer = &analysis.Analyzer{
	Name:      "goroutinelife",
	Doc:       "every goroutine in library code must be WaitGroup-joined, context-bounded, or provably terminating",
	Run:       run,
	FactTypes: []analysis.Fact{(*goFact)(nil)},
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}

	// Export a fact per declared function so importers can judge named
	// spawns; keep the local map for same-package spawns.
	c.local = map[types.Object]*goFact{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fact := &goFact{
				Joins:      len(c.wgDones(fd.Body)) > 0,
				CtxBounded: c.ctxBounded(fd.Body),
				Blocking:   c.blocking(fd.Body),
			}
			c.local[obj] = fact
			if fact.Joins || fact.CtxBounded || fact.Blocking {
				pass.ExportObjectFact(obj, fact)
			}
		}
	}

	if pass.Pkg.Name() == "main" {
		return nil // a main package's goroutines die with the process
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	local map[types.Object]*goFact
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	var g *flow.Graph // built lazily; only channel obligations need it
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if g == nil {
			g = flow.New(body)
		}
		c.checkSpawn(body, g, gs)
		return true
	})
}

func (c *checker) checkSpawn(encl *ast.BlockStmt, g *flow.Graph, gs *ast.GoStmt) {
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		c.checkNamedSpawn(gs)
		return
	}

	// 1. WaitGroup join.
	dones := c.wgDones(lit.Body)
	if len(dones) > 0 {
		waits := c.wgWaits(encl)
		for _, d := range dones {
			if d.field != "" {
				continue // field WaitGroup: lifecycle Wait lives elsewhere
			}
			if !waits[d.obj] {
				c.pass.Reportf(gs.Pos(),
					"goroutine calls %s.Done but nothing in this function Waits on it; the join is incomplete",
					d.obj.Name())
			}
		}
		return
	}

	// 2. Context-bounded.
	if c.ctxBounded(lit.Body) {
		return
	}

	// 3. Sends on unbuffered local channels must be consumed on all paths.
	leaked := false
	for _, ch := range c.unbufferedSends(lit.Body) {
		if !c.consumedOnAllPaths(encl, g, gs, ch) {
			leaked = true
			c.pass.Reportf(gs.Pos(),
				"goroutine may leak: its send on %s is not consumed on every path from the spawn (a skipped receive strands the sender); consume it on all paths, buffer the channel, or bound the goroutine with a context",
				ch.Name())
		}
	}
	if leaked {
		return
	}

	// 4. Otherwise only provably terminating bodies pass.
	if c.blocking(lit.Body) {
		c.pass.Reportf(gs.Pos(),
			"unbounded goroutine: not joined by a WaitGroup, not bounded by a context, and its body can block forever; join it, watch ctx.Done, or make it finite")
	}
}

// checkNamedSpawn judges `go f(...)` / `go x.m(...)` through goFact.
func (c *checker) checkNamedSpawn(gs *ast.GoStmt) {
	var id *ast.Ident
	switch fun := gs.Call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	obj, ok := c.pass.Info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	var fact *goFact
	if obj.Pkg().Path() == c.pass.Pkg.Path() {
		fact = c.local[obj]
	} else {
		var f goFact
		if c.pass.ImportObjectFact(obj, &f) {
			fact = &f
		}
	}
	if fact == nil {
		return // no knowledge: stay quiet rather than guess
	}
	if fact.Joins || fact.CtxBounded {
		return
	}
	if fact.Blocking {
		c.pass.Reportf(gs.Pos(),
			"unbounded goroutine: %s blocks (loops/selects/channel ops) but the spawn is neither WaitGroup-joined nor context-bounded",
			obj.Name())
	}
}

// doneRef is one wg.Done() target: a field class or a local object.
type doneRef struct {
	field string
	obj   types.Object
}

// wgDones finds the WaitGroups body calls Done on.
func (c *checker) wgDones(body *ast.BlockStmt) []doneRef {
	var out []doneRef
	seen := map[any]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, ok := c.waitGroupMethod(call, "Done")
		if !ok {
			return true
		}
		if field := c.fieldClass(recv); field != "" {
			if !seen[field] {
				seen[field] = true
				out = append(out, doneRef{field: field})
			}
			return true
		}
		if obj := c.identObj(recv); obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, doneRef{obj: obj})
		}
		return true
	})
	return out
}

// wgWaits collects the local WaitGroup objects Waited anywhere in body
// (including inside nested literals — a closer goroutine's Wait counts).
func (c *checker) wgWaits(body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, ok := c.waitGroupMethod(call, "Wait"); ok {
			if obj := c.identObj(recv); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// waitGroupMethod matches `recv.<name>()` where recv is a sync.WaitGroup,
// returning the receiver expression.
func (c *checker) waitGroupMethod(call *ast.CallExpr, name string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false
	}
	return sel.X, true
}

// fieldClass names a struct-field receiver "<pkg>.<Type>.<field>", or "".
func (c *checker) fieldClass(e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selInfo, ok := c.pass.Info.Selections[sel]
	if !ok {
		return ""
	}
	v, ok := selInfo.Obj().(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	recv := selInfo.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	return v.Pkg().Path() + "." + named.Obj().Name() + "." + v.Name()
}

func (c *checker) identObj(e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := c.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.Info.Defs[id]
}

// ctxBounded reports whether body watches a context (calls Done or Err on a
// context.Context value).
func (c *checker) ctxBounded(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
			return true
		}
		if tv, ok := c.pass.Info.Types[sel.X]; ok && isContext(tv.Type) {
			found = true
		}
		return true
	})
	return found
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// blocking reports whether body contains constructs that can block forever:
// loops, selects, or channel receives. Sends do not count — an unbuffered
// local send is checked by the consumption obligation, and a send to a
// caller-supplied channel is the consumer's lifecycle to manage.
// WaitGroup.Wait is bounded waiting (the counted goroutines are checked
// separately) and does not count either.
func (c *checker) blocking(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return true
	})
	return found
}

// unbufferedSends returns the local channel objects the body sends on whose
// make() has no capacity (or explicit zero): those sends block until
// received. Channels from parameters, fields, or buffered makes have their
// lifetime managed elsewhere.
func (c *checker) unbufferedSends(body *ast.BlockStmt) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	record := func(e ast.Expr) {
		obj := c.identObj(e)
		if obj == nil || seen[obj] {
			return
		}
		if c.isUnbufferedLocalChan(obj) {
			seen[obj] = true
			out = append(out, obj)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok {
			record(send.Chan)
		}
		return true
	})
	return out
}

// isUnbufferedLocalChan reports whether obj is a local variable initialized
// with an unbuffered make(chan ...). The scan covers the whole package file
// set, so a channel made in the enclosing function and sent to inside the
// literal resolves.
func (c *checker) isUnbufferedLocalChan(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return false
	}
	if _, ok := v.Type().Underlying().(*types.Chan); !ok {
		return false
	}
	unbuffered := false
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || (c.pass.Info.Defs[id] != obj && c.pass.Info.Uses[id] != obj) {
					continue
				}
				call, ok := as.Rhs[i].(*ast.CallExpr)
				if !ok {
					continue
				}
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "make" {
					if len(call.Args) == 1 {
						unbuffered = true
					} else if len(call.Args) == 2 {
						if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
							unbuffered = true
						}
					}
				}
			}
			return true
		})
	}
	return unbuffered
}

// consumedOnAllPaths checks the skippable-receive obligation: every path
// from the spawn to function exit must touch ch in a consuming position
// (receive, range, select case, passing it to a call, returning or storing
// it). A loop whose body consumes satisfies the obligation at its header —
// the zero-iteration CFG path is not a real counterexample when the gather
// loop is counted to match the sends.
func (c *checker) consumedOnAllPaths(encl *ast.BlockStmt, g *flow.Graph, gs *ast.GoStmt, ch types.Object) bool {
	okNodes := map[ast.Node]bool{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n == ast.Node(gs) {
				continue
			}
			if c.nodeConsumes(n, ch) {
				okNodes[n] = true
			}
		}
	}
	// Mark consuming loops at their headers.
	ast.Inspect(encl, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			if s.Cond != nil && c.subtreeMentions(s.Body, ch) {
				okNodes[s.Cond] = true
			}
		case *ast.RangeStmt:
			if c.subtreeMentions(s.Body, ch) || c.identObj(s.X) == ch {
				okNodes[s] = true
			}
		}
		return true
	})
	return g.MustReach(gs, func(n ast.Node) bool { return okNodes[n] }, nil)
}

// nodeConsumes reports whether CFG node n uses ch in any position other
// than sending on it.
func (c *checker) nodeConsumes(n ast.Node, ch types.Object) bool {
	if send, ok := n.(*ast.SendStmt); ok && c.identObj(send.Chan) == ch {
		return false
	}
	found := false
	flow.Shallow(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && c.pass.Info.Uses[id] == ch {
			found = true
			return false
		}
		return true
	})
	return found
}

func (c *checker) subtreeMentions(n ast.Node, ch types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && c.pass.Info.Uses[id] == ch {
			found = true
		}
		return true
	})
	return found
}
