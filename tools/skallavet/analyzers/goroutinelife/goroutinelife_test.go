package goroutinelife_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/goroutinelife"
	"skalla/tools/skallavet/internal/checktest"
)

func TestGoLifeOK(t *testing.T) {
	checktest.Run(t, goroutinelife.Analyzer, "golifeok")
}

func TestGoLifeBad(t *testing.T) {
	checktest.Run(t, goroutinelife.Analyzer, "golifebad")
}
