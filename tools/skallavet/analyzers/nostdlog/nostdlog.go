// Package nostdlog enforces the PR-2 observability invariant: library
// packages log exclusively through log/slog (via internal/obs), never
// through the standard "log" package or fmt's stdout printers. Mixed std-log
// and slog output interleaves unparseably, bypasses the level/format flags
// both daemons expose, and — for log.Fatal — kills the process from library
// code.
//
// Flagged in library packages (package main and _test.go files exempt):
//
//   - any reference to the standard "log" package (log/slog is fine);
//   - fmt.Print, fmt.Printf, fmt.Println (stdout writers; Sprintf/Errorf
//     and explicit-writer Fprintf stay allowed).
package nostdlog

import (
	"go/ast"
	"go/types"

	"skalla/tools/skallavet/analysis"
)

// Analyzer is the nostdlog rule.
var Analyzer = &analysis.Analyzer{
	Name: "nostdlog",
	Doc:  "forbid std log and fmt stdout printing in library packages; use log/slog",
	Run:  run,
}

var fmtPrinters = map[string]bool{"Print": true, "Printf": true, "Println": true}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "log":
				pass.Reportf(sel.Pos(),
					"standard log package in library package %s: log through log/slog (internal/obs.Logger)", pass.Pkg.Path())
			case "fmt":
				if fn, ok := obj.(*types.Func); ok && fmtPrinters[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"fmt.%s writes to stdout from library package %s: log through log/slog, or print to an explicit io.Writer", fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
