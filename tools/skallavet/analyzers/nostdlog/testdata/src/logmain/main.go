// Fixture: package main is exempt — CLIs print to stdout by design.
package main

import "fmt"

func main() {
	fmt.Println("skalla")
}
