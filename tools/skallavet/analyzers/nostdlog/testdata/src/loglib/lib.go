// Fixture: library packages must log through slog; stdout printing and
// the legacy log package are flagged.
package loglib

import (
	"fmt"
	"log"
	"log/slog"
)

func legacy(err error) {
	log.Printf("query failed: %v", err) // want `standard log package in library package`
	log.Println("done")                 // want `standard log package in library package`
}

func stdout(n int) {
	fmt.Println("rows:", n)      // want `fmt\.Println writes to stdout`
	fmt.Printf("rows: %d\n", n)  // want `fmt\.Printf writes to stdout`
	fmt.Print("rows: ", n, "\n") // want `fmt\.Print writes to stdout`
}

func allowed(n int) string {
	slog.Info("rows scanned", "n", n) // allowed: structured logging
	return fmt.Sprintf("rows: %d", n) // allowed: Sprintf formats, does not print
}

func annotated() {
	//skallavet:allow nostdlog -- CLI-style table output requested by the caller
	fmt.Println("header")
}
