package nostdlog_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/nostdlog"
	"skalla/tools/skallavet/internal/checktest"
)

func TestLibrary(t *testing.T) {
	checktest.Run(t, nostdlog.Analyzer, "loglib")
}

func TestMainExempt(t *testing.T) {
	checktest.Run(t, nostdlog.Analyzer, "logmain")
}
