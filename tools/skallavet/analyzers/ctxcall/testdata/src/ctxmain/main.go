// Fixture: package main is exempt — main owns the root context.
package main

import "context"

func main() {
	ctx := context.Background() // allowed: main package
	_ = ctx
}
