// Fixture: a library package; fresh root contexts are forbidden unless
// annotated as lifecycle roots.
package ctxlib

import "context"

type site struct{}

func (site) call(ctx context.Context) error { return ctx.Err() }

func threaded(ctx context.Context, s site) error {
	return s.call(ctx) // allowed: caller's context threaded through
}

func detached(s site) error {
	return s.call(context.Background()) // want `context.Background in library package`
}

func placeholder(s site) error {
	return s.call(context.TODO()) // want `context.TODO in library package`
}

// dial mirrors net.Dial-style convenience constructors: a documented
// lifecycle root.
func dial(s site) error {
	//skallavet:allow ctxcall -- convenience constructor; DialContext is the context-threading variant
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	return s.call(ctx)
}
