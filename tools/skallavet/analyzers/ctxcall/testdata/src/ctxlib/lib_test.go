// Fixture: _test.go files are exempt from the ctxcall rule.
package ctxlib

import "context"

func helperForTests(s site) error {
	return s.call(context.Background()) // allowed: test file
}
