package ctxcall_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/ctxcall"
	"skalla/tools/skallavet/internal/checktest"
)

func TestLibrary(t *testing.T) {
	checktest.Run(t, ctxcall.Analyzer, "ctxlib")
}

func TestMainExempt(t *testing.T) {
	checktest.Run(t, ctxcall.Analyzer, "ctxmain")
}
