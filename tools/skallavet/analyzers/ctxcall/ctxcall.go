// Package ctxcall enforces the context-threading invariant behind the
// fault-tolerance work: every site/transport call chain must carry the
// caller's context.Context, because cancellation, per-attempt timeouts, and
// query-ID propagation all ride on it. A context.Background() (or TODO())
// buried in library code detaches everything below it from coordinator
// deadlines — exactly the bug the Relay fan-out had before contexts were
// threaded through transport.Backend.
//
// The rule: no context.Background or context.TODO in library packages.
// package main, _test.go files, and annotated lifecycle roots (e.g. the
// convenience Dial that mirrors net.DialTimeout) are exempt; roots use
// `//skallavet:allow ctxcall -- reason`.
package ctxcall

import (
	"go/ast"
	"go/types"

	"skalla/tools/skallavet/analysis"
)

// Analyzer is the ctxcall rule.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcall",
	Doc:  "forbid context.Background/TODO in library packages; thread the caller's context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if name := fn.Name(); name == "Background" || name == "TODO" {
				pass.Reportf(call.Pos(),
					"context.%s in library package %s: thread the caller's context (lifecycle roots may annotate with //skallavet:allow ctxcall -- <reason>)",
					name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
