// Fixture: a look-alike Registry outside skalla/internal/obs — its
// constructor calls are not metric registrations and must not be flagged.
package otherreg

type Registry struct{}

func (r *Registry) Counter(name, help string) int { return 0 }

var reg Registry

var notAMetric = reg.Counter("AnythingGoesHere", "local billing counter")
