// Fixture stub of the metrics registry: the constructor surface metricname
// checks, with throwaway return types.
package obs

type Registry struct{}

type Counter struct{}
type CounterVec struct{}
type Gauge struct{}
type GaugeVec struct{}
type FloatGauge struct{}
type FloatGaugeVec struct{}
type Histogram struct{}
type HistogramVec struct{}

func (r *Registry) Counter(name, help string) *Counter { return nil }
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return nil
}
func (r *Registry) Gauge(name, help string) *Gauge { return nil }
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return nil
}
func (r *Registry) FloatGauge(name, help string) *FloatGauge { return nil }
func (r *Registry) FloatGaugeVec(name, help string, labels ...string) *FloatGaugeVec {
	return nil
}
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return nil
}
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return nil
}

var Default = &Registry{}
