// Fixture: metric registrations against the obs registry, good and bad.
package metricfix

import "skalla/internal/obs"

var computed = "skalla_" + "coord_dynamic_total"

var (
	// Well-formed registrations: namespace + layer + quantity, counters
	// (and only counters) ending in _total.
	good      = obs.Default.Counter("skalla_coord_queries_total", "queries")
	goodVec   = obs.Default.CounterVec("skalla_transport_bytes_total", "bytes", "dir")
	goodGauge = obs.Default.Gauge("skalla_coord_active_queries", "in flight")
	goodHist  = obs.Default.Histogram("skalla_site_compute_seconds", "compute", nil)
	goodFloat = obs.Default.FloatGaugeVec("skalla_plan_cost_error_ratio", "drift", "direction")

	noNamespace = obs.Default.Counter("coord_queries_total", "queries")              // want `does not match skalla_<layer>_<quantity>`
	onePart     = obs.Default.Gauge("skalla_queries", "too flat")                    // want `does not match skalla_<layer>_<quantity>`
	camel       = obs.Default.Gauge("skalla_coord_activeQueries", "camel")           // want `does not match skalla_<layer>_<quantity>`
	counterBare = obs.Default.Counter("skalla_coord_queries", "missing suffix")      // want `counter "skalla_coord_queries" must end in _total`
	gaugeTotal  = obs.Default.Gauge("skalla_coord_active_total", "lying suffix")     // want `non-counter "skalla_coord_active_total" must not end in _total`
	histTotal   = obs.Default.HistogramVec("skalla_site_compute_total", "", nil)     // want `non-counter "skalla_site_compute_total" must not end in _total`
	notLiteral  = obs.Default.Counter(computed, "computed")                          // want `must be a string literal`
	floatTotal  = obs.Default.FloatGauge("skalla_process_uptime_total", "not a rate") // want `non-counter "skalla_process_uptime_total" must not end in _total`
)
