package metricname_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/metricname"
	"skalla/tools/skallavet/internal/checktest"
)

func TestRegistryCalls(t *testing.T) {
	checktest.Run(t, metricname.Analyzer, "metricfix")
}

func TestLookAlikeRegistryIgnored(t *testing.T) {
	checktest.Run(t, metricname.Analyzer, "otherreg")
}
