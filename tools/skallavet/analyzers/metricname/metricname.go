// Package metricname enforces the exported-metrics naming contract: every
// metric registered through obs.Registry is named
// `skalla_<layer>_<quantity>...` in snake_case, counters end in `_total`, and
// nothing else does. The name is the scrape-side identity of the series —
// dashboards, alerts, and the bench-to-Prometheus join all key on it — so a
// malformed or misclassified name ships a permanent contract violation that
// only surfaces after operators have built on it.
//
// Three patterns are flagged on calls to the Registry constructors (Counter,
// CounterVec, Gauge, GaugeVec, FloatGauge, FloatGaugeVec, Histogram,
// HistogramVec):
//
//  1. a name argument that is not a string literal — registration names must
//     be grep-able constants, not computed values;
//  2. a literal that does not match ^skalla_[a-z][a-z0-9]*(_[a-z0-9]+)+$ —
//     the skalla_ namespace plus at least a layer and a quantity segment;
//  3. a counter not ending in `_total`, or a non-counter ending in `_total`
//     — the Prometheus convention that lets consumers tell rates from
//     levels by name alone.
package metricname

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"skalla/tools/skallavet/analysis"
)

// RegistryPackage is the package defining the metrics registry; only
// constructor calls on its Registry type are checked.
const RegistryPackage = "skalla/internal/obs"

// constructors maps Registry method names to whether they build counters.
var constructors = map[string]bool{
	"Counter":       true,
	"CounterVec":    true,
	"Gauge":         false,
	"GaugeVec":      false,
	"FloatGauge":    false,
	"FloatGaugeVec": false,
	"Histogram":     false,
	"HistogramVec":  false,
}

// namePattern is the required shape: the skalla_ namespace followed by at
// least two snake_case segments (layer, quantity), each [a-z][a-z0-9]*.
var namePattern = regexp.MustCompile(`^skalla_[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// Analyzer is the metricname rule.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "metrics registered via obs.Registry must be named skalla_<layer>_<quantity>... with _total on counters only",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			isCounter, known := constructors[sel.Sel.Name]
			if !known || !isRegistry(pass.Info, sel.X) || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind.String() != "STRING" {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to Registry.%s must be a string literal — computed names cannot be audited against the skalla_ naming contract", sel.Sel.Name)
				return true
			}
			name := strings.Trim(lit.Value, "`\"")
			if !namePattern.MatchString(name) {
				pass.Reportf(lit.Pos(),
					"metric name %q does not match skalla_<layer>_<quantity>... (%s)", name, namePattern)
				return true
			}
			if isCounter && !strings.HasSuffix(name, "_total") {
				pass.Reportf(lit.Pos(),
					"counter %q must end in _total — consumers tell rates from levels by the suffix", name)
			}
			if !isCounter && strings.HasSuffix(name, "_total") {
				pass.Reportf(lit.Pos(),
					"non-counter %q must not end in _total — the suffix promises a monotonic rate", name)
			}
			return true
		})
	}
	return nil
}

// isRegistry reports whether expr's type is obs.Registry (or a pointer to
// it), so look-alike methods on unrelated types are not flagged.
func isRegistry(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == RegistryPackage
}
