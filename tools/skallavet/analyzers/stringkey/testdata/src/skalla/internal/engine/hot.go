// Fixture: a hot-path package (import path matches the enforcement list).
package engine

import "fmt"

type rowSource struct{}

// registry is a legitimate cold-path map: the directive documents why it is
// allowed to stay string-keyed.
//
//skallavet:allow stringkey -- table registry, keyed per relation name, never per tuple
type registry map[string]rowSource

func groupCounts(rows [][2]string) map[string]int { // want `string-keyed map in hot-path package`
	counts := make(map[string]int) // want `string-keyed map in hot-path package`
	for _, r := range rows {
		counts[r[0]+"|"+r[1]]++ // want `string-concatenated map key in hot-path package`
	}
	return counts
}

func sprintfKey(m map[string]int, a, b int) int { // want `string-keyed map in hot-path package`
	return m[fmt.Sprintf("%d/%d", a, b)] // want `string-concatenated map key in hot-path package`
}

//skallavet:allow stringkey -- schema cache, keyed once per relation
func schemaCache() map[string]rowSource {
	//skallavet:allow stringkey -- schema cache, keyed once per relation
	return make(map[string]rowSource)
}

func intKeyed(rows []int64) map[int64]int {
	counts := make(map[int64]int)
	for _, r := range rows {
		counts[r]++
	}
	return counts
}
