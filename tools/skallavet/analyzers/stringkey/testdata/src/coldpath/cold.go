// Fixture: a package outside the hot-path list; string-keyed maps are fine
// here.
package coldpath

import "fmt"

func labels(pairs [][2]string) map[string]string {
	out := make(map[string]string)
	for _, p := range pairs {
		out[fmt.Sprintf("%s=%s", p[0], p[1])] = p[1]
	}
	return out
}
