// Package stringkey enforces the PR-1 data-plane invariant: hot-path
// packages group and index tuples through hashed 64-bit keys
// (relation.KeyIndex / KeySet / KeyCounter), never through string-keyed maps
// or string-concatenated composite keys. The hashed-key refactor cut
// sync-merge allocations ~70%; a single `map[string]` reintroduced on a
// per-tuple path silently gives that back.
//
// Two patterns are flagged inside the hot-path package list:
//
//  1. any map type with a string key (declaration, field, make, literal);
//  2. indexing any string-keyed map with a synthesized key — a `+`
//     concatenation or an fmt.Sprintf result — which is the classic
//     composite-group-key smell even when the map itself is declared in a
//     colder package.
//
// Cold-path uses inside those packages (schema caches, table registries)
// carry a `//skallavet:allow stringkey -- reason` directive; the directive
// is the documentation that the map is not on a per-tuple path.
package stringkey

import (
	"go/ast"
	"go/types"

	"skalla/tools/skallavet/analysis"
)

// HotPackages lists the import paths under enforcement. Membership means
// "tuples flow through here per row"; extend it as new hot paths appear.
var HotPackages = map[string]bool{
	"skalla/internal/relation": true,
	"skalla/internal/core":     true,
	"skalla/internal/engine":   true,
	"skalla/internal/store":    true,
	"skalla/internal/gmdj":     true,
}

// Analyzer is the stringkey rule.
var Analyzer = &analysis.Analyzer{
	Name: "stringkey",
	Doc:  "forbid string-keyed maps and concatenated string group keys in hot-path packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !HotPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.MapType:
				if isString(pass.Info.TypeOf(n.Key)) {
					pass.Reportf(n.Pos(),
						"string-keyed map in hot-path package %s: group and index tuples with hashed keys (relation.KeyIndex/KeySet), or annotate a cold-path use with //skallavet:allow stringkey -- <reason>",
						pass.Pkg.Path())
				}
			case *ast.IndexExpr:
				t := pass.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				m, ok := t.Underlying().(*types.Map)
				if !ok || !isString(m.Key()) {
					return true
				}
				if synthesizedKey(pass, n.Index) {
					pass.Reportf(n.Index.Pos(),
						"string-concatenated map key in hot-path package %s: this is a composite group key — use hashed keys (relation.KeyIndex) instead of string synthesis",
						pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// synthesizedKey reports whether expr builds a string at the use site: a +
// concatenation of strings or an fmt.Sprintf call.
func synthesizedKey(pass *analysis.Pass, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return synthesizedKey(pass, e.X)
	case *ast.BinaryExpr:
		return e.Op.String() == "+" && isString(pass.Info.TypeOf(e))
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		return ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Sprintf"
	}
	return false
}
