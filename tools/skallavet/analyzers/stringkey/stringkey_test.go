package stringkey_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/stringkey"
	"skalla/tools/skallavet/internal/checktest"
)

func TestHotPath(t *testing.T) {
	checktest.Run(t, stringkey.Analyzer, "skalla/internal/engine")
}

func TestColdPathAllowed(t *testing.T) {
	checktest.Run(t, stringkey.Analyzer, "coldpath")
}
