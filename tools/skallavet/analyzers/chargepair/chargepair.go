// Package chargepair enforces the staged-merge budget protocol of
// skalla/internal/core: memory charged into an hStage must always be
// resolved, and charge errors must never be dropped.
//
// Rule 1 (stage resolution): every *hStage binding — `st := mg.NewStage(k)`,
// a receive `st := <-stages` (plain or select comm), or a range binding
// `for st := range stages` — must reach, on every path from the binding, a
// resolution of st before st is rebound, the next iteration begins, or the
// function exits. Resolutions are st.Discard(), passing st to a call
// (CommitStage, CommitStageSharded, or any transfer), sending st on a
// channel, returning it, or storing it. Method calls on st (st.Add,
// st.Rows) and field reads are uses, not resolutions — a stage that is
// filled and then dropped on an error path leaks its budget charge and its
// pooled blocks. The check runs on the analysis/flow CFG: range bindings
// are bounded by the loop back edge, and a path that blocks forever (a
// committed retry loop) satisfies vacuously.
//
// Rule 2 (charge errors): the error results of (*memBudget).charge and
// (*hStage).Add must be used. An ignored charge error means the operation
// proceeds past its memory budget and the accounting drifts for the rest of
// the query.
package chargepair

import (
	"go/ast"
	"go/token"
	"go/types"

	"skalla/tools/skallavet/analysis"
	"skalla/tools/skallavet/analysis/flow"
)

// corePath is the package whose protocol this rule encodes; the types are
// unexported, so the rule cannot trigger anywhere else.
const corePath = "skalla/internal/core"

// Analyzer is the chargepair rule.
var Analyzer = &analysis.Analyzer{
	Name: "chargepair",
	Doc:  "every hStage must reach Discard or a commit/transfer on all paths; charge/Add errors must be checked",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkBody(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkBody(lit.Body)
				}
				return true
			})
		}
		c.checkChargeErrors(file)
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// binding is one point that takes ownership of a fresh *hStage.
type binding struct {
	obj  types.Object
	node ast.Node       // CFG node of the binding
	rng  *ast.RangeStmt // non-nil for range bindings
}

func (c *checker) checkBody(body *ast.BlockStmt) {
	g := flow.New(body)
	var binds []binding
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.AssignStmt:
				binds = append(binds, c.assignBindings(n)...)
			case *ast.RangeStmt:
				if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
					if obj := c.pass.Info.Defs[id]; obj != nil && c.isStage(obj.Type()) {
						binds = append(binds, binding{obj: obj, node: n, rng: n})
					}
				}
			}
		}
	}
	for _, bind := range binds {
		c.checkBinding(g, bind)
	}
}

// assignBindings extracts *hStage bindings from an assignment: a NewStage
// call or a channel receive on the right-hand side.
func (c *checker) assignBindings(as *ast.AssignStmt) []binding {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	var out []binding
	for i, rhs := range as.Rhs {
		fresh := false
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			fresh = c.isNewStageCall(rhs)
		case *ast.UnaryExpr:
			if rhs.Op == token.ARROW {
				if tv, ok := c.pass.Info.Types[rhs]; ok {
					fresh = c.isStage(tv.Type)
				}
			}
		}
		if !fresh {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := c.pass.Info.Defs[id]
		if obj == nil {
			obj = c.pass.Info.Uses[id]
		}
		if obj != nil {
			out = append(out, binding{obj: obj, node: as})
		}
	}
	return out
}

func (c *checker) checkBinding(g *flow.Graph, bind binding) {
	resolve := func(n ast.Node) bool { return n != bind.node && c.resolves(n, bind.obj) }
	var ok bool
	if bind.rng != nil {
		// Per-iteration obligation: from the loop body, resolve before the
		// back edge rebinds (boundary = the RangeStmt header node).
		ok = g.MustReachBlock(g.RangeBody(bind.rng), resolve,
			func(n ast.Node) bool { return n == ast.Node(bind.rng) })
	} else {
		// From the binding: resolve before st is rebound or the function
		// exits.
		ok = g.MustReach(bind.node, resolve,
			func(n ast.Node) bool { return c.rebinds(n, bind.obj) })
	}
	if !ok {
		c.pass.Reportf(bind.node.Pos(),
			"hStage %s can be dropped without Discard or commit on some path: its budget charge and pooled blocks leak; Discard on every non-commit path",
			bind.obj.Name())
	}
}

// resolves reports whether CFG node n resolves the stage: Discard on it,
// passing it to a call, sending it, returning it, or storing it. Mentions
// that are only the base of a selector (st.Add(...), st.bytes) do not
// resolve.
func (c *checker) resolves(n ast.Node, st types.Object) bool {
	// go/defer statements are opaque to flow.Shallow, but their call
	// arguments are evaluated when the statement executes: `go commit(st)`
	// transfers the stage and `defer st.Discard()` resolves it at exit.
	// Scan the call instead (Shallow still keeps nested literal bodies
	// out, so a closure's shadowing parameter is not mistaken for st).
	switch stmt := n.(type) {
	case *ast.GoStmt:
		n = stmt.Call
	case *ast.DeferStmt:
		n = stmt.Call
	}
	selBase := map[*ast.Ident]bool{}
	discard := false
	flow.Shallow(n, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && c.pass.Info.Uses[id] == st {
			if sel.Sel.Name == "Discard" {
				discard = true
			} else {
				selBase[id] = true
			}
		}
		return true
	})
	if discard {
		return true
	}
	found := false
	flow.Shallow(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && c.pass.Info.Uses[id] == st && !selBase[id] {
			found = true
			return false
		}
		return true
	})
	return found
}

// rebinds reports whether node n assigns a new value to st.
func (c *checker) rebinds(n ast.Node, st types.Object) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if c.pass.Info.Uses[id] == st || c.pass.Info.Defs[id] == st {
				return true
			}
		}
	}
	return false
}

// isStage matches *hStage (or hStage) from skalla/internal/core.
func (c *checker) isStage(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "hStage" && obj.Pkg() != nil && obj.Pkg().Path() == corePath
}

// isNewStageCall matches (*merger).NewStage.
func (c *checker) isNewStageCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewStage" {
		return false
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == corePath
}

// checkChargeErrors flags charge/Add calls whose error result is dropped:
// expression statements, go/defer statements, and assignments to blank.
func (c *checker) checkChargeErrors(file *ast.File) {
	if c.pass.IsTestFile(file.Pos()) {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.GoStmt:
			call = n.Call
		case *ast.DeferStmt:
			call = n.Call
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					call, _ = n.Rhs[0].(*ast.CallExpr)
				}
			}
		}
		if call == nil {
			return true
		}
		if name, ok := c.chargeLike(call); ok {
			c.pass.Reportf(call.Pos(),
				"error from %s ignored: a failed charge must abort the operation, or the memory budget accounting drifts for the rest of the query",
				name)
		}
		return true
	})
}

// chargeLike matches (*memBudget).charge and (*hStage).Add.
func (c *checker) chargeLike(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != corePath {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", false
	}
	switch {
	case named.Obj().Name() == "memBudget" && fn.Name() == "charge":
		return "memBudget.charge", true
	case named.Obj().Name() == "hStage" && fn.Name() == "Add":
		return "hStage.Add", true
	}
	return "", false
}
