package core

import "context"

// Commit-or-discard on every path: fine.
func commitOrDiscard(m *merger, rows []int64) error {
	st := m.NewStage(1)
	for _, r := range rows {
		if err := st.Add(r); err != nil {
			st.Discard()
			return err
		}
	}
	return m.CommitStage(st, 1)
}

// Early error return drops the filled stage: its charge leaks.
func droppedOnError(m *merger, rows []int64, check func() error) error {
	st := m.NewStage(1) // want `hStage st can be dropped without Discard or commit on some path`
	for _, r := range rows {
		if err := st.Add(r); err != nil {
			return err
		}
	}
	return m.CommitStage(st, 1)
}

// Transfer through a channel with a Discard on the cancel path: fine.
func transfer(ctx context.Context, m *merger, stages chan *hStage) {
	st := m.NewStage(2)
	select {
	case stages <- st:
	case <-ctx.Done():
		st.Discard()
	}
}

// Range consumption, every iteration commits or discards: fine.
func drain(m *merger, stages chan *hStage) error {
	for st := range stages {
		if st.Rows() == 0 {
			st.Discard()
			continue
		}
		if err := m.CommitStage(st, 3); err != nil {
			st.Discard()
			return err
		}
	}
	return nil
}

// A continue that skips both commit and discard leaks that iteration's
// stage. (Reading st.Rows is a use, not a resolution — passing st to
// another function would transfer ownership and satisfy the rule.)
func leakyDrain(m *merger, stages chan *hStage) error {
	for st := range stages { // want `hStage st can be dropped without Discard or commit on some path`
		if st.Rows() == 0 {
			continue
		}
		if err := m.CommitStage(st, 3); err != nil {
			return err
		}
	}
	return nil
}

// Receive-bound stage resolved on all paths: fine.
func receiveCommit(m *merger, stages chan *hStage) error {
	st := <-stages
	return m.CommitStage(st, 4)
}

// Receive-bound stage dropped when empty: the drop path leaks.
func receiveDrop(m *merger, stages chan *hStage) error {
	st := <-stages // want `hStage st can be dropped without Discard or commit on some path`
	if st.Rows() == 0 {
		return nil
	}
	return m.CommitStage(st, 4)
}

// Handing the stage to a goroutine worker transfers ownership — the
// closure argument is evaluated at spawn time: fine.
func parallelCommit(m *merger, stages chan *hStage, done func(error)) {
	for st := range stages {
		if st.Rows() == 0 {
			st.Discard()
			continue
		}
		go func(st *hStage) {
			done(m.CommitStage(st, 5))
		}(st)
	}
}

// A deferred Discard resolves the stage at exit: fine.
func deferredDiscard(m *merger, rows []int64) error {
	st := m.NewStage(6)
	defer st.Discard()
	for _, r := range rows {
		if err := st.Add(r); err != nil {
			return err
		}
	}
	return m.CommitStage(st, 6)
}

// Checked charge: fine.
func chargedChecked(b *memBudget, n int64) error {
	if err := b.charge(n); err != nil {
		return err
	}
	b.release(n)
	return nil
}

// Dropped charge errors drift the budget accounting.
func chargedIgnored(b *memBudget, st *hStage, n int64) {
	b.charge(n)       // want `error from memBudget.charge ignored`
	_ = st.Add(n)     // want `error from hStage.Add ignored`
	defer b.charge(n) // want `error from memBudget.charge ignored`
}
