// Fixture: a miniature of the real core stage/budget API. The analyzer
// keys on type and package names, so this package fakes the hot path
// skalla/internal/core.
package core

type merger struct {
	k int
}

type hStage struct {
	bytes int64
}

type memBudget struct {
	used, limit int64
}

func (m *merger) NewStage(k int) *hStage              { return &hStage{} }
func (st *hStage) Add(n int64) error                  { st.bytes += n; return nil }
func (st *hStage) Rows() int                          { return int(st.bytes) }
func (st *hStage) Discard()                           {}
func (m *merger) CommitStage(st *hStage, k int) error { return nil }
func (b *memBudget) charge(n int64) error             { return nil }
func (b *memBudget) release(n int64)                  {}
