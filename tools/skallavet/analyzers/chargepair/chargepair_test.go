package chargepair_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/chargepair"
	"skalla/tools/skallavet/internal/checktest"
)

func TestChargePair(t *testing.T) {
	checktest.Run(t, chargepair.Analyzer, "skalla/internal/core")
}
