package lockorder_test

import (
	"testing"

	"skalla/tools/skallavet/analyzers/lockorder"
	"skalla/tools/skallavet/internal/checktest"
)

func TestLockGood(t *testing.T) {
	checktest.Run(t, lockorder.Analyzer, "lockgood")
}

func TestLockBad(t *testing.T) {
	checktest.Run(t, lockorder.Analyzer, "lockbad")
}
