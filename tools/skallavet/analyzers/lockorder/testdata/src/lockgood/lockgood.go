// Fixture: acquisitions that follow the committed order in this package's
// lockorder.golden produce no diagnostics.
package lockgood

import (
	"sync"

	"locklib"
)

type Catalog struct {
	mu   sync.RWMutex
	rows map[string]int
}

type Session struct {
	mu  sync.Mutex
	sem chan struct{}
}

func (s *Session) WithCatalog(c *Catalog, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.mu.RLock() // allowed: golden orders Session.mu before Catalog.mu
	defer c.mu.RUnlock()
	return c.rows[key]
}

// Admit holds the session lock while taking the admission semaphore; the
// send is an acquisition edge Session.mu -> Session.sem, declared golden.
func (s *Session) Admit() {
	s.mu.Lock()
	s.sem <- struct{}{}
	s.mu.Unlock()
	<-s.sem
}

// Publish creates the cross-package edge Session.mu -> locklib.Registry.Mu
// via locklib.Bump's exported fact; the golden declares it.
func (s *Session) Publish(r *locklib.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	locklib.Bump(r)
}

// Sequential acquisitions do not create edges: the first lock is released
// before the second is taken.
func Sequential(s *Session, c *Catalog) {
	s.mu.Lock()
	s.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// Reversed order with no overlap is fine too.
func ReversedSequential(s *Session, c *Catalog) {
	c.mu.Lock()
	c.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}
