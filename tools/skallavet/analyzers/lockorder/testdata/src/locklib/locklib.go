// Fixture dependency: exports a lock class and a method that acquires it,
// so importers exercise the cross-package acquiresFact path.
package locklib

import "sync"

type Registry struct {
	Mu sync.Mutex
	n  int
}

// Bump acquires locklib.Registry.Mu; importers calling it under their own
// locks create a cross-package ordering edge.
func Bump(r *Registry) {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	r.n++
}
