// Fixture: inverted and undeclared acquisition edges are reported.
package lockbad

import (
	"sync"

	"locklib"
)

type Catalog struct {
	mu sync.RWMutex
}

type Session struct {
	mu sync.Mutex
}

type Cache struct {
	mu sync.Mutex
}

// Inverted: the golden orders Session.mu before Catalog.mu, but this takes
// the catalog lock first and the session lock under it.
func Inverted(s *Session, c *Catalog) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.mu.Lock() // want `lock order inversion: lockbad.Session.mu acquired while holding lockbad.Catalog.mu`
	defer s.mu.Unlock()
}

// Undeclared: no golden line mentions Cache.mu at all.
func Undeclared(s *Session, k *Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k.mu.Lock() // want `undeclared lock acquisition edge: lockbad.Session.mu -> lockbad.Cache.mu`
}

// CrossPackageInverted: locklib.Bump acquires Registry.Mu (via its fact);
// the golden orders Session.mu after it, so holding Session.mu here inverts.
func CrossPackageInverted(s *Session, r *locklib.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	locklib.Bump(r) // want `lock order inversion: locklib.Registry.Mu acquired while holding lockbad.Session.mu`
}

// ReleasedBeforehand: an explicit unlock ends the held range, so no edge.
func ReleasedBeforehand(s *Session, c *Catalog) {
	c.mu.Lock()
	c.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// DeferredStaysHeld: a deferred unlock does NOT end the held range — the
// alias through a local pointer is tracked too.
func DeferredStaysHeld(s *Session, c *Catalog) {
	lk := &c.mu
	lk.Lock()
	defer lk.Unlock()
	s.mu.Lock() // want `lock order inversion: lockbad.Session.mu acquired while holding lockbad.Catalog.mu`
	s.mu.Unlock()
}

// Allowed direction for reference: Session.mu before Catalog.mu is golden.
func AllowedDirection(s *Session, c *Catalog) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.mu.RLock()
	c.mu.RUnlock()
}
