// Package lockorder enforces the committed lock-acquisition hierarchy.
//
// Every sync.Mutex/sync.RWMutex field, package-level mutex variable, and
// `chan struct{}` semaphore field (send = acquire, receive = release — the
// admission semaphore pattern) is a lock class named
// "<pkgpath>.<Type>.<field>" (or "<pkgpath>.<var>"). A forward may-analysis
// over the analysis/flow CFG tracks which classes may be held at every
// program point; each blocking acquisition made while another class is held
// contributes an ordering edge held -> acquired.
//
// Edges must appear in the committed partial order
// (tools/skallavet/testdata/lockorder.golden, or a package-local
// lockorder.golden in fixtures). An edge that inverts the golden's
// transitive closure is a potential deadlock cycle; an edge missing from the
// golden entirely must be added deliberately — the golden is the reviewed
// record of who may hold what while taking what.
//
// Cross-package edges ride the fact system: analyzing a package, lockorder
// exports for each function the set of classes it may acquire (transitive
// through same-package calls); analyzing an importer, a call made under a
// held lock pulls the callee's fact and adds held -> each callee class.
// Deliberate conservatisms: deferred Unlocks do not end a held range (the
// lock really is held until return), and function literals are analyzed as
// separate functions with an empty entry held-set (they typically run on
// another goroutine or under a retry driver; their acquires do not fold
// into the enclosing function's fact).
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"skalla/tools/skallavet/analysis"
	"skalla/tools/skallavet/analysis/flow"
)

// acquiresFact records the lock classes a function may acquire, directly or
// through same-package callees.
type acquiresFact struct {
	Locks []string `json:"locks"`
}

func (*acquiresFact) AFact() {}

// Analyzer is the lockorder rule.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "lock acquisition edges must follow the committed partial order in lockorder.golden",
	Run:       run,
	FactTypes: []analysis.Fact{(*acquiresFact)(nil)},
}

func run(pass *analysis.Pass) error {
	golden, goldenPath := loadGolden(pass.Dir)

	c := &checker{
		pass:     pass,
		golden:   golden,
		path:     goldenPath,
		acquires: map[types.Object][]string{},
	}

	// Collect function bodies: declared functions now, literals after — the
	// fact fixpoint below only folds declared same-package callees.
	type fn struct {
		obj  types.Object
		body *ast.BlockStmt
	}
	var fns []fn
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fns = append(fns, fn{pass.Info.Defs[fd.Name], fd.Body})
		}
	}

	// Fact fixpoint: a function's acquire set is its direct blocking
	// acquisitions plus the sets of every same-package function it calls
	// (imported callees resolve through their package's facts, which are
	// already transitive).
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			set := map[string]bool{}
			for _, l := range c.acquires[f.obj] {
				set[l] = true
			}
			before := len(set)
			c.directAcquires(f.body, set)
			c.calleeAcquires(f.body, set)
			if len(set) != before {
				c.acquires[f.obj] = sortedKeys(set)
				changed = true
			}
		}
	}
	for obj, locks := range c.acquires {
		if obj != nil && len(locks) > 0 {
			pass.ExportObjectFact(obj, &acquiresFact{Locks: locks})
		}
	}

	// Edge collection: declared bodies and every literal body, each with an
	// empty entry held-set.
	for _, f := range fns {
		c.checkBody(f.body)
		ast.Inspect(f.body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkBody(lit.Body)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	golden   *order
	path     string
	acquires map[types.Object][]string
	aliases  map[types.Object]string // local -> lock class, per body
	reported map[[2]string]bool
}

// directAcquires adds the classes blocking-acquired anywhere in body
// (including inside literals — the lock is acquired by *some* code this
// function starts) to set.
func (c *checker) directAcquires(body *ast.BlockStmt, set map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if cls, _, blocking := c.acquisition(n); blocking && cls != "" {
			set[cls] = true
		}
		return true
	})
}

// calleeAcquires folds the acquire sets of called functions into set:
// same-package callees from the in-progress fixpoint, imported callees from
// their package's facts.
func (c *checker) calleeAcquires(body *ast.BlockStmt, set map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, l := range c.calleeLocks(call) {
			set[l] = true
		}
		return true
	})
}

// calleeLocks resolves the acquire set of a call's target function.
func (c *checker) calleeLocks(call *ast.CallExpr) []string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, ok := c.pass.Info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	if obj.Pkg().Path() == c.pass.Pkg.Path() {
		return c.acquires[obj]
	}
	var fact acquiresFact
	if c.pass.ImportObjectFact(obj, &fact) {
		return fact.Locks
	}
	return nil
}

// checkBody runs the held-set analysis over one body and reports edges that
// violate the golden order.
func (c *checker) checkBody(body *ast.BlockStmt) {
	c.aliases = map[types.Object]string{}
	c.reported = map[[2]string]bool{} // dedup edge reports per body
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false // literals get their own checkBody call
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			cls := c.lockClass(rhs)
			if cls == "" {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := c.pass.Info.Defs[id]; obj != nil {
					c.aliases[obj] = cls
				}
			}
		}
		return true
	})

	g := flow.New(body)
	gen := func(n ast.Node) []any { return c.genKill(n, true) }
	kill := func(n ast.Node) []any { return c.genKill(n, false) }
	sets := g.ForwardMay(gen, kill)
	for _, b := range g.Blocks {
		sets.Walk(b, gen, kill, func(n ast.Node, live map[any]bool) {
			if len(live) == 0 {
				return
			}
			held := make([]string, 0, len(live))
			for k := range live {
				held = append(held, k.(string))
			}
			sort.Strings(held)
			var acquired []string
			if cls, _, blocking := c.nodeAcquisition(n); blocking && cls != "" {
				acquired = append(acquired, cls)
			}
			flow.Shallow(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					acquired = append(acquired, c.calleeLocks(call)...)
				}
				return true
			})
			// Self edges (re-acquiring the class you hold — a second
			// stripe, or a plain self-deadlock) must be declared in the
			// golden like any other edge.
			for _, acq := range acquired {
				for _, h := range held {
					c.edge(n.Pos(), h, acq)
				}
			}
		})
	}
}

// edge checks one held->acquired edge against the golden order.
func (c *checker) edge(pos token.Pos, held, acq string) {
	key := [2]string{held, acq}
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	if c.golden.allows(held, acq) {
		return
	}
	if c.golden.allows(acq, held) {
		c.pass.Reportf(pos,
			"lock order inversion: %s acquired while holding %s, but %s orders %s before %s",
			acq, held, c.goldenName(), acq, held)
		return
	}
	c.pass.Reportf(pos,
		"undeclared lock acquisition edge: %s -> %s; if this order is intended, add it to %s",
		held, acq, c.goldenName())
}

func (c *checker) goldenName() string {
	if c.path == "" {
		return "tools/skallavet/testdata/lockorder.golden (missing)"
	}
	// Keep diagnostics stable across checkouts: report the path from the
	// repo/fixture root, not the absolute one.
	if i := strings.LastIndex(c.path, "tools/skallavet/"); i >= 0 {
		return c.path[i:]
	}
	return filepath.Base(c.path)
}

// genKill returns the lock classes node n acquires (gen) or releases
// (!gen). Deferred statements are opaque CFG nodes, so a deferred Unlock
// never kills — the lock is genuinely held until return.
func (c *checker) genKill(n ast.Node, gen bool) []any {
	var out []any
	if cls, isAcq, _ := c.nodeAcquisition(n); cls != "" && isAcq == gen {
		out = append(out, cls)
	}
	flow.Shallow(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if cls, isAcq, _ := c.lockCall(x); cls != "" && isAcq == gen {
				out = append(out, cls)
			}
		case *ast.UnaryExpr:
			// `<-x.sem` releases a semaphore class.
			if !gen && x.Op == token.ARROW {
				if cls := c.lockClass(x.X); cls != "" {
					out = append(out, cls)
				}
			}
		}
		return true
	})
	return out
}

// nodeAcquisition classifies a whole CFG node that is itself an acquisition:
// a semaphore send statement. Returns (class, isAcquire, blocking).
func (c *checker) nodeAcquisition(n ast.Node) (string, bool, bool) {
	if send, ok := n.(*ast.SendStmt); ok {
		if cls := c.lockClass(send.Chan); cls != "" {
			return cls, true, true
		}
	}
	if cls, isAcq, blocking := c.acquisitionExpr(n); cls != "" {
		return cls, isAcq, blocking
	}
	return "", false, false
}

// acquisition classifies any AST node during the directAcquires sweep.
func (c *checker) acquisition(n ast.Node) (string, bool, bool) {
	if send, ok := n.(*ast.SendStmt); ok {
		if cls := c.lockClass(send.Chan); cls != "" {
			return cls, true, true
		}
	}
	if call, ok := n.(*ast.CallExpr); ok {
		return c.lockCall(call)
	}
	return "", false, false
}

// acquisitionExpr finds a lock-method call evaluated by node n itself.
func (c *checker) acquisitionExpr(n ast.Node) (cls string, isAcq, blocking bool) {
	flow.Shallow(n, func(x ast.Node) bool {
		if cls != "" {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if cl, a, b := c.lockCall(call); cl != "" {
				cls, isAcq, blocking = cl, a, b
				return false
			}
		}
		return true
	})
	return
}

// lockCall classifies mutex method calls: Lock/RLock block and acquire,
// TryLock/TryRLock acquire without blocking, Unlock/RUnlock release.
func (c *checker) lockCall(call *ast.CallExpr) (string, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	var isAcq, blocking bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isAcq, blocking = true, true
	case "TryLock", "TryRLock":
		isAcq, blocking = true, false
	case "Unlock", "RUnlock":
		isAcq, blocking = false, false
	default:
		return "", false, false
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	cls := c.lockClass(sel.X)
	if cls == "" {
		return "", false, false
	}
	return cls, isAcq, blocking
}

// lockClass names the lock an expression denotes, or "" if it is not a
// trackable lock (locals without a field alias are untracked).
func (c *checker) lockClass(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.lockClass(e.X)
		}
	case *ast.IndexExpr:
		// One stripe of a lock array shares the array's class.
		return c.lockClass(e.X)
	case *ast.SelectorExpr:
		if selInfo, ok := c.pass.Info.Selections[e]; ok {
			v, ok := selInfo.Obj().(*types.Var)
			if !ok || !isLockType(v.Type()) {
				return ""
			}
			recv := selInfo.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || v.Pkg() == nil {
				return ""
			}
			return v.Pkg().Path() + "." + named.Obj().Name() + "." + v.Name()
		}
		// Qualified package-level var: pkg.Mu.
		if v, ok := c.pass.Info.Uses[e.Sel].(*types.Var); ok {
			return packageVarClass(v)
		}
	case *ast.Ident:
		obj := c.pass.Info.Uses[e]
		if obj == nil {
			obj = c.pass.Info.Defs[e]
		}
		if obj == nil {
			return ""
		}
		if cls, ok := c.aliases[obj]; ok {
			return cls
		}
		if v, ok := obj.(*types.Var); ok {
			return packageVarClass(v)
		}
	}
	return ""
}

// packageVarClass names a package-level lock variable, or "" for locals.
func packageVarClass(v *types.Var) string {
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() || !isLockType(v.Type()) {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

// isLockType reports whether t is sync.Mutex, sync.RWMutex, an array of
// them (stripes), or a struct-less semaphore channel.
func isLockType(t types.Type) bool {
	switch t := t.(type) {
	case *types.Array:
		return isLockType(t.Elem())
	case *types.Named:
		obj := t.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
	case *types.Chan:
		st, ok := t.Elem().Underlying().(*types.Struct)
		return ok && st.NumFields() == 0
	}
	return false
}

// order is the parsed golden partial order with its transitive closure.
type order struct {
	closure map[string]map[string]bool
}

func (o *order) allows(a, b string) bool {
	if o == nil || o.closure == nil {
		return false
	}
	return o.closure[a][b]
}

// loadGolden locates and parses the committed hierarchy: a package-local
// lockorder.golden (fixtures) or tools/skallavet/testdata/lockorder.golden
// found by walking up from the package directory to the repository root.
func loadGolden(dir string) (*order, string) {
	try := []string{filepath.Join(dir, "lockorder.golden")}
	for d := dir; ; {
		try = append(try, filepath.Join(d, "tools", "skallavet", "testdata", "lockorder.golden"))
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	for _, path := range try {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		return parseGolden(string(data)), path
	}
	return nil, ""
}

func parseGolden(text string) *order {
	direct := map[string]map[string]bool{}
	nodes := map[string]bool{}
	addEdge := func(a, b string) {
		if direct[a] == nil {
			direct[a] = map[string]bool{}
		}
		direct[a][b] = true
		nodes[a], nodes[b] = true, true
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "->")
		if len(parts) < 2 {
			continue
		}
		// Chains are allowed: a -> b -> c declares both edges.
		for i := 0; i+1 < len(parts); i++ {
			a, b := strings.TrimSpace(parts[i]), strings.TrimSpace(parts[i+1])
			if a != "" && b != "" {
				addEdge(a, b)
			}
		}
	}
	// Transitive closure (the node sets are tiny).
	closure := map[string]map[string]bool{}
	for a := range direct {
		closure[a] = map[string]bool{}
		for b := range direct[a] {
			closure[a][b] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for a := range closure {
			for b := range closure[a] {
				for c := range closure[b] {
					if !closure[a][c] {
						closure[a][c] = true
						changed = true
					}
				}
			}
		}
	}
	return &order{closure: closure}
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
