package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// allowPrefix is the suppression directive. It follows the Go directive
// convention (no space after //):
//
//	//skallavet:allow rule1,rule2 -- justification
//
// A directive suppresses the named rules on its own line (trailing-comment
// form) and on the line immediately below it (standalone form). The
// justification after "--" is mandatory by convention — an allow without a
// reason should not survive review — but the parser only requires the rule
// list.
const allowPrefix = "//skallavet:allow"

type lineKey struct {
	file string
	line int
}

// directive is one parsed //skallavet:allow comment. used records, per rule
// name, whether the directive suppressed at least one diagnostic this run —
// the audit mode's staleness signal.
type directive struct {
	pos   token.Position
	rules []string
	used  map[string]bool
}

func (d *directive) allowsRule(rule string) bool {
	for _, r := range d.rules {
		if r == rule || r == "all" {
			return true
		}
	}
	return false
}

type allowSet map[lineKey][]*directive

func (s allowSet) allows(rule string, pos token.Position) bool {
	hit := false
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range s[lineKey{pos.Filename, line}] {
			if d.allowsRule(rule) {
				d.used[rule] = true
				hit = true
			}
		}
	}
	return hit
}

// collectAllows gathers every //skallavet:allow directive in the files.
// The returned set is keyed by the directive's own line; allows() also
// honors a directive one line above the diagnostic.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	out := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				if rest == "" {
					continue
				}
				posn := fset.Position(c.Pos())
				d := &directive{pos: posn, rules: splitRules(rest), used: map[string]bool{}}
				key := lineKey{posn.Filename, posn.Line}
				out[key] = append(out[key], d)
			}
		}
	}
	return out
}

func splitRules(list string) []string {
	return strings.FieldsFunc(list, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	})
}

// auditAllows reports the stale suppressions: for every directive, each named
// rule that is part of this run's analyzer set but produced no diagnostic on
// the directive's lines. Dead suppressions rot fast — the code they excused
// moves or is fixed, and the leftover directive will silently mask the next
// genuine hit on that line.
func auditAllows(allow allowSet, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, ds := range allow {
		for _, d := range ds {
			for _, rule := range d.rules {
				if rule == "all" {
					// A blanket allow is live if it suppressed anything.
					if len(d.used) == 0 {
						out = append(out, Finding{
							Analyzer: "auditallow",
							Pos:      d.pos,
							Message:  "stale suppression: //skallavet:allow all matched no diagnostic on this line; delete it",
						})
					}
					continue
				}
				if !known[rule] {
					out = append(out, Finding{
						Analyzer: "auditallow",
						Pos:      d.pos,
						Message:  "stale suppression: " + rule + " is not a skallavet rule; delete or fix the directive",
					})
					continue
				}
				if !d.used[rule] {
					out = append(out, Finding{
						Analyzer: "auditallow",
						Pos:      d.pos,
						Message:  "stale suppression: rule " + rule + " no longer fires on this line; delete the //skallavet:allow",
					})
				}
			}
		}
	}
	return out
}

// auditExcludedFiles scans package-directory files excluded from the current
// build (build-tag-excluded files; _test.go files are covered by the test
// variant) for allow directives. Such a directive can suppress nothing today
// — the analyzers never see those lines — so it is definitionally stale, and
// left in place it would silently start masking diagnostics the moment the
// file rejoins the build. The scan is textual: an excluded file may not even
// parse for this platform.
func auditExcludedFiles(paths []string) []Finding {
	var out []Finding
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, allowPrefix)
			if idx < 0 {
				continue
			}
			out = append(out, Finding{
				Analyzer: "auditallow",
				Pos:      token.Position{Filename: path, Line: i + 1, Column: idx + 1},
				Message:  "suppression in a build-excluded file: the rule cannot fire here, and the directive will mask a real hit if the file rejoins the build; delete it",
			})
		}
	}
	return out
}
