package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the suppression directive. It follows the Go directive
// convention (no space after //):
//
//	//skallavet:allow rule1,rule2 -- justification
//
// A directive suppresses the named rules on its own line (trailing-comment
// form) and on the line immediately below it (standalone form). The
// justification after "--" is mandatory by convention — an allow without a
// reason should not survive review — but the parser only requires the rule
// list.
const allowPrefix = "//skallavet:allow"

type lineKey struct {
	file string
	line int
}

type allowSet map[lineKey]map[string]bool

func (s allowSet) allows(rule string, pos token.Position) bool {
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if rules, ok := s[lineKey{pos.Filename, line}]; ok && (rules[rule] || rules["all"]) {
			return true
		}
	}
	return false
}

// collectAllows gathers every //skallavet:allow directive in the files.
// The returned set is keyed by the directive's own line; allows() also
// honors a directive one line above the diagnostic.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	out := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				if rest == "" {
					continue
				}
				posn := fset.Position(c.Pos())
				key := lineKey{posn.Filename, posn.Line}
				if out[key] == nil {
					out[key] = map[string]bool{}
				}
				for _, rule := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					out[key][rule] = true
				}
			}
		}
	}
	return out
}
