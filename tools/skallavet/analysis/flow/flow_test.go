package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a function and returns its CFG plus a
// lookup from marker comments: the node of the statement on the line of each
// `/*name*/` marker.
func parseBody(t *testing.T, src string) (*Graph, map[string]ast.Node) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\nfunc f() {\n"+src+"\n}", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	body := file.Decls[0].(*ast.FuncDecl).Body
	g := New(body)
	markers := map[string]int{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "/*") {
				name := strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
				markers[name] = fset.Position(c.Pos()).Line
			}
		}
	}
	nodes := map[string]ast.Node{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			line := fset.Position(n.Pos()).Line
			for name, l := range markers {
				if l == line {
					nodes[name] = n
				}
			}
		}
	}
	for name := range markers {
		if nodes[name] == nil {
			t.Fatalf("marker %s matched no CFG node", name)
		}
	}
	return g, nodes
}

func at(nodes map[string]ast.Node, name string) Pred {
	return func(n ast.Node) bool { return n == nodes[name] }
}

func TestMayReachStraightLine(t *testing.T) {
	g, n := parseBody(t, `
		a() /*a*/
		b() /*b*/
		c() /*c*/
	`)
	if !g.MayReach(n["a"], at(n, "c"), nil) {
		t.Error("a should reach c")
	}
	if g.MayReach(n["c"], at(n, "a"), nil) {
		t.Error("c should not reach a")
	}
	if g.MayReach(n["a"], at(n, "c"), at(n, "b")) {
		t.Error("kill at b should stop a->c")
	}
}

func TestMayReachBranches(t *testing.T) {
	g, n := parseBody(t, `
		a() /*a*/
		if cond() {
			k() /*k*/
		}
		c() /*c*/
	`)
	if !g.MayReach(n["a"], at(n, "c"), at(n, "k")) {
		t.Error("the else path avoids the kill; a should still may-reach c")
	}
}

func TestMayReachLoopBackEdge(t *testing.T) {
	g, n := parseBody(t, `
		for i := 0; i < 3; i++ {
			a() /*a*/
		}
	`)
	if !g.MayReach(n["a"], at(n, "a"), nil) {
		t.Error("loop body should reach itself via the back edge")
	}
}

func TestMayReachExclusiveSwitch(t *testing.T) {
	g, n := parseBody(t, `
		switch v() {
		case 1:
			a() /*a*/
		default:
			b() /*b*/
		}
	`)
	if g.MayReach(n["a"], at(n, "b"), nil) {
		t.Error("switch cases are exclusive")
	}
}

func TestMustReach(t *testing.T) {
	g, n := parseBody(t, `
		a() /*a*/
		if cond() {
			return /*r*/
		}
		ok() /*ok*/
	`)
	if g.MustReach(n["a"], at(n, "ok"), nil) {
		t.Error("the early return path skips ok")
	}
	g2, n2 := parseBody(t, `
		a() /*a*/
		if cond() {
			ok() /*ok1*/
			return
		}
		ok() /*ok2*/
	`)
	must := func(m ast.Node) bool { return m == n2["ok1"] || m == n2["ok2"] }
	if !g2.MustReach(n2["a"], must, nil) {
		t.Error("every path hits an ok()")
	}
}

func TestMustReachBoundary(t *testing.T) {
	g, n := parseBody(t, `
		a() /*a*/
		b() /*b*/
		ok() /*ok*/
	`)
	if g.MustReach(n["a"], at(n, "ok"), at(n, "b")) {
		t.Error("boundary at b precedes ok")
	}
}

func TestMustReachSelectBlocksForever(t *testing.T) {
	g, n := parseBody(t, `
		a() /*a*/
		select {}
		ok() /*ok*/
	`)
	if !g.MustReach(n["a"], at(n, "ok"), nil) {
		t.Error("a path that blocks forever never violates the obligation")
	}
}

func TestRangeBodyObligation(t *testing.T) {
	g, n := parseBody(t, `
		for v := range ch { /*range*/
			if bad() {
				break
			}
			consume(v) /*consume*/
		}
	`)
	rs := n["range"].(*ast.RangeStmt)
	body := g.RangeBody(rs)
	if body == nil {
		t.Fatal("no range body block")
	}
	if g.MustReachBlock(body, at(n, "consume"), at(n, "range")) {
		t.Error("the break path escapes without consuming")
	}
	g2, n2 := parseBody(t, `
		for v := range ch { /*range*/
			consume(v) /*consume*/
		}
	`)
	rs2 := n2["range"].(*ast.RangeStmt)
	if !g2.MustReachBlock(g2.RangeBody(rs2), at(n2, "consume"), at(n2, "range")) {
		t.Error("every iteration consumes")
	}
}

func TestForwardMay(t *testing.T) {
	g, n := parseBody(t, `
		lock() /*lock*/
		if cond() {
			unlock() /*unlock*/
		}
		probe() /*probe*/
	`)
	gen := func(m ast.Node) []any {
		if m == n["lock"] {
			return []any{"L"}
		}
		return nil
	}
	kill := func(m ast.Node) []any {
		if m == n["unlock"] {
			return []any{"L"}
		}
		return nil
	}
	sets := g.ForwardMay(gen, kill)
	probeBlk := g.BlockOf(n["probe"])
	var liveAtProbe bool
	sets.Walk(probeBlk, gen, kill, func(m ast.Node, live map[any]bool) {
		if m == n["probe"] {
			liveAtProbe = live["L"]
		}
	})
	if !liveAtProbe {
		t.Error("L may be held at probe (the unlock is conditional)")
	}
}

func TestShallowSkipsNestedBodies(t *testing.T) {
	g, n := parseBody(t, `
		x := func() { inner() } /*assign*/
		_ = x
	`)
	_ = g
	var sawInner, sawLit bool
	Shallow(n["assign"], func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == "inner" {
			sawInner = true
		}
		if _, ok := m.(*ast.FuncLit); ok {
			sawLit = true
		}
		return true
	})
	if sawInner {
		t.Error("Shallow descended into a FuncLit body")
	}
	if !sawLit {
		t.Error("Shallow should surface the FuncLit node itself")
	}
}

func TestDeferOpaque(t *testing.T) {
	g, n := parseBody(t, `
		a() /*a*/
		defer u() /*defer*/
		b() /*b*/
	`)
	// A deferred call must not act as a kill between a and b.
	kill := func(m ast.Node) bool {
		if d, ok := m.(*ast.DeferStmt); ok {
			_ = d
			return false // analyzers see the DeferStmt node and decide; here: opaque
		}
		found := false
		Shallow(m, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && id.Name == "u" {
				found = true
			}
			return true
		})
		return found
	}
	if !g.MayReach(n["a"], at(n, "b"), kill) {
		t.Error("deferred u() should not kill the a->b path")
	}
}
