// Package flow builds intraprocedural control-flow graphs over go/ast and
// answers the reachability questions Skalla's dataflow analyzers need:
//
//   - MayReach: can execution flow from node A to a node matching P without
//     first passing a node matching K? (use-after-recycle, lock-held ranges)
//   - MustReach: does every path from node A hit a node matching P before a
//     boundary or function exit? (stage commit/discard obligations)
//   - ForwardMay: classic forward may-analysis with per-branch merging
//     (the set of locks that may be held at each program point).
//
// Granularity is the statement/expression level: each basic block holds the
// AST nodes evaluated in it, in order. Compound statements contribute their
// header parts (init, condition, tag) to the enclosing block; their bodies
// become separate blocks. Three statement kinds stay opaque single nodes:
// DeferStmt and GoStmt (their calls do not run here — a deferred Unlock must
// not end a lock-held range), and RangeStmt (standing in the loop-header
// block for the per-iteration binding). Function literals are likewise never
// entered — analyzers build a separate Graph per FuncLit body.
//
// The builder is conservative where Go is rare: goto edges go to function
// exit, so may-analysis over-approximates and must-analysis.
package flow

import "go/ast"

// Block is a basic block: a maximal sequence of nodes with single-entry,
// single-exit control flow, plus successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block

	blockOf   map[ast.Node]*Block
	nodeIndex map[ast.Node]int
	rangeBody map[*ast.RangeStmt]*Block
}

// New builds the CFG of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{
		blockOf:   map[ast.Node]*Block{},
		nodeIndex: map[ast.Node]int{},
		rangeBody: map[*ast.RangeStmt]*Block{},
	}
	b := &builder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, g.Exit)
	return g
}

// BlockOf returns the block containing n, or nil if n is not a CFG node.
func (g *Graph) BlockOf(n ast.Node) *Block { return g.blockOf[n] }

// RangeBody returns the block that starts s's loop body (nil if s is not in
// this graph). Obligations bound per iteration start here, with the
// RangeStmt node itself as the iteration boundary.
func (g *Graph) RangeBody(s *ast.RangeStmt) *Block { return g.rangeBody[s] }

type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []frame
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) add(n ast.Node) {
	if n == nil || b.cur == nil {
		return
	}
	b.g.blockOf[n] = b.cur
	b.g.nodeIndex[n] = len(b.cur.Nodes)
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump terminates the current block with an edge to `to` and continues in a
// fresh (possibly unreachable) block for any statements that follow.
func (b *builder) jump(to *Block) {
	b.edge(b.cur, to)
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		join := b.newBlock()
		b.edge(b.cur, join)
		b.cur = join
		b.labeled(s.Label.Name, s.Stmt)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt("", s)
	case *ast.RangeStmt:
		b.rangeStmt("", s)
	case *ast.SwitchStmt:
		b.switchStmt("", s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt("", s)
	case *ast.SelectStmt:
		b.selectStmt("", s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case nil:
	default:
		// Simple statements (assign, expr, send, incdec, decl, defer, go,
		// empty) evaluate wholly within the current block.
		b.add(s)
	}
}

// labeled dispatches a labeled statement, threading the label to the
// construct so labeled break/continue resolve.
func (b *builder) labeled(label string, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ForStmt:
		b.forStmt(label, s)
	case *ast.RangeStmt:
		b.rangeStmt(label, s)
	case *ast.SwitchStmt:
		b.switchStmt(label, s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(label, s)
	case *ast.SelectStmt:
		b.selectStmt(label, s)
	default:
		b.stmt(s)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.jump(f.breakTo)
				return
			}
		}
		b.jump(b.g.Exit)
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.continueTo != nil && (label == "" || f.label == label) {
				b.jump(f.continueTo)
				return
			}
		}
		b.jump(b.g.Exit)
	case "goto":
		// Conservative: a goto ends the path. None of the analyzed packages
		// use goto; an exit edge keeps may-analysis sound enough without
		// label-resolution machinery.
		b.jump(b.g.Exit)
	case "fallthrough":
		// Handled structurally in switchStmt (the clause-end block links to
		// the next clause); reaching here means a stray fallthrough — treat
		// as end of path.
		b.jump(b.g.Exit)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, after)

	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *builder) forStmt(label string, s *ast.ForStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	header := b.newBlock()
	b.edge(b.cur, header)
	b.cur = header
	if s.Cond != nil {
		b.add(s.Cond)
	}
	after := b.newBlock()
	post := b.newBlock()
	body := b.newBlock()
	b.edge(header, body)
	if s.Cond != nil {
		b.edge(header, after)
	}

	b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: post})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, post)
	b.frames = b.frames[:len(b.frames)-1]

	b.cur = post
	if s.Post != nil {
		b.add(s.Post)
	}
	b.edge(b.cur, header)
	b.cur = after
}

func (b *builder) rangeStmt(label string, s *ast.RangeStmt) {
	header := b.newBlock()
	b.edge(b.cur, header)
	b.cur = header
	// The RangeStmt node stands for the per-iteration binding (and the
	// one-time evaluation of s.X); Shallow knows not to descend into Body.
	b.add(s)
	after := b.newBlock()
	body := b.newBlock()
	b.edge(header, body)
	b.edge(header, after)
	b.g.rangeBody[s] = body

	b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: header})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, header)
	b.frames = b.frames[:len(b.frames)-1]

	b.cur = after
}

func (b *builder) switchStmt(label string, s *ast.SwitchStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(label, s.Body.List, func(clause ast.Stmt, blk *Block) []ast.Stmt {
		cc := clause.(*ast.CaseClause)
		for _, e := range cc.List {
			b.g.blockOf[e] = blk
			b.g.nodeIndex[e] = len(blk.Nodes)
			blk.Nodes = append(blk.Nodes, e)
		}
		return cc.Body
	}, true)
}

func (b *builder) typeSwitchStmt(label string, s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(label, s.Body.List, func(clause ast.Stmt, blk *Block) []ast.Stmt {
		return clause.(*ast.CaseClause).Body
	}, false)
}

func (b *builder) selectStmt(label string, s *ast.SelectStmt) {
	b.caseClauses(label, s.Body.List, func(clause ast.Stmt, blk *Block) []ast.Stmt {
		cc := clause.(*ast.CommClause)
		if cc.Comm != nil {
			b.g.blockOf[cc.Comm] = blk
			b.g.nodeIndex[cc.Comm] = len(blk.Nodes)
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		return cc.Body
	}, false)
}

// caseClauses builds the shared clause structure of switch/type-switch/
// select: every clause block is a successor of the dispatch block; clause
// bodies merge at a common after-block. head seeds a clause's block with its
// header nodes (case expressions, comm statement) and returns the body.
// A default clause is detected structurally (no header); without one,
// switches get a direct dispatch→after edge — select without default blocks
// until some clause is runnable, so it gets none.
func (b *builder) caseClauses(label string, clauses []ast.Stmt, head func(ast.Stmt, *Block) []ast.Stmt, switchLike bool) {
	dispatch := b.cur
	after := b.newBlock()
	hasDefault := false
	type pending struct {
		blk  *Block
		body []ast.Stmt
	}
	var work []pending
	for _, clause := range clauses {
		blk := b.newBlock()
		b.edge(dispatch, blk)
		body := head(clause, blk)
		if isDefaultClause(clause) {
			hasDefault = true
		}
		work = append(work, pending{blk, body})
	}
	if switchLike && !hasDefault {
		b.edge(dispatch, after)
	}
	if !switchLike && len(clauses) == 0 {
		// `select {}` blocks forever: no edge out — statements after it are
		// unreachable, which the dead continuation block models.
	}
	b.frames = append(b.frames, frame{label: label, breakTo: after})
	for i, p := range work {
		b.cur = p.blk
		b.stmtList(stripFallthrough(p.body))
		if endsInFallthrough(p.body) && i+1 < len(work) {
			b.edge(b.cur, work[i+1].blk)
		} else {
			b.edge(b.cur, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func isDefaultClause(clause ast.Stmt) bool {
	switch c := clause.(type) {
	case *ast.CaseClause:
		return c.List == nil
	case *ast.CommClause:
		return c.Comm == nil
	}
	return false
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

func stripFallthrough(body []ast.Stmt) []ast.Stmt {
	if endsInFallthrough(body) {
		return body[:len(body)-1]
	}
	return body
}
