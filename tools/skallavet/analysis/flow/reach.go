package flow

import "go/ast"

// Pred is a node predicate used by the reachability queries. A nil Pred
// matches nothing.
type Pred func(ast.Node) bool

func match(p Pred, n ast.Node) bool { return p != nil && p(n) }

// MayReach reports whether some execution path starting immediately after
// `from` reaches a node matching target without first passing a node
// matching kill. It over-approximates (per-branch merging): a true result
// means "possibly", a false result means "provably never".
func (g *Graph) MayReach(from ast.Node, target, kill Pred) bool {
	blk := g.blockOf[from]
	if blk == nil {
		return false
	}
	seen := map[*Block]bool{}
	var scan func(b *Block, start int) bool
	scan = func(b *Block, start int) bool {
		for _, n := range b.Nodes[start:] {
			if match(target, n) {
				return true
			}
			if match(kill, n) {
				return false
			}
		}
		for _, s := range b.Succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			if scan(s, 0) {
				return true
			}
		}
		return false
	}
	return scan(blk, g.nodeIndex[from]+1)
}

// MustReach reports whether every execution path starting immediately after
// `from` reaches a node matching ok before reaching one matching boundary
// and before falling off the function exit. Cycles count as success: a path
// that never terminates never violates the obligation, and treating
// in-progress blocks as satisfied computes the greatest fixpoint the
// property needs.
func (g *Graph) MustReach(from ast.Node, ok, boundary Pred) bool {
	blk := g.blockOf[from]
	if blk == nil {
		return false
	}
	return g.mustFrom(blk, g.nodeIndex[from]+1, ok, boundary, map[*Block]bool{})
}

// MustReachBlock is MustReach with an explicit start block — used for
// per-iteration obligations, where the paths of interest begin at a loop
// body rather than after a specific node.
func (g *Graph) MustReachBlock(b *Block, ok, boundary Pred) bool {
	if b == nil {
		return false
	}
	return g.mustFrom(b, 0, ok, boundary, map[*Block]bool{})
}

func (g *Graph) mustFrom(b *Block, start int, ok, boundary Pred, onPath map[*Block]bool) bool {
	for _, n := range b.Nodes[start:] {
		if match(ok, n) {
			return true
		}
		if match(boundary, n) {
			return false
		}
	}
	if b == g.Exit {
		return false
	}
	if len(b.Succs) == 0 {
		// Dead continuation block (after return/break) or a blocking
		// `select {}`: no path continues, so no path violates.
		return true
	}
	if onPath[b] {
		return true
	}
	onPath[b] = true
	defer delete(onPath, b)
	for _, s := range b.Succs {
		if !g.mustFrom(s, 0, ok, boundary, onPath) {
			return false
		}
	}
	return true
}

// Sets holds the per-block results of a forward may-analysis: In[b] is the
// set of keys that may be live when b is entered.
type Sets struct {
	In map[*Block]map[any]bool
}

// ForwardMay runs a forward may-analysis (union join at merge points) to a
// fixpoint: gen(n) yields keys that become live at n, kill(n) yields keys
// that die. Use Sets.Walk to replay a block with the evolving live set.
func (g *Graph) ForwardMay(gen, kill func(ast.Node) []any) *Sets {
	in := map[*Block]map[any]bool{}
	for _, b := range g.Blocks {
		in[b] = map[any]bool{}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range g.Blocks {
			live := map[any]bool{}
			for k := range in[b] {
				live[k] = true
			}
			for _, n := range b.Nodes {
				for _, k := range kill(n) {
					delete(live, k)
				}
				for _, k := range gen(n) {
					live[k] = true
				}
			}
			for _, s := range b.Succs {
				for k := range live {
					if !in[s][k] {
						in[s][k] = true
						changed = true
					}
				}
			}
		}
	}
	return &Sets{In: in}
}

// Walk replays block b from its In set, calling fn(n, live) for each node
// with the may-live set holding *before* n takes effect.
func (s *Sets) Walk(b *Block, gen, kill func(ast.Node) []any, fn func(n ast.Node, live map[any]bool)) {
	live := map[any]bool{}
	for k := range s.In[b] {
		live[k] = true
	}
	for _, n := range b.Nodes {
		fn(n, live)
		for _, k := range kill(n) {
			delete(live, k)
		}
		for _, k := range gen(n) {
			live[k] = true
		}
	}
}

// Shallow visits the parts of a CFG node that execute when the node does,
// without descending into nested function-literal bodies, deferred or
// go-spawned calls, or (for the RangeStmt header node) the loop body.
// FuncLit nodes themselves are visited (so analyzers can recurse manually)
// but their bodies are not. Returning false from visit prunes the subtree.
func Shallow(n ast.Node, visit func(ast.Node) bool) {
	if n == nil {
		return
	}
	switch s := n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		// The call runs elsewhere; argument evaluation is visible but the
		// analyzers that care (lockorder, chargepair) treat these opaquely,
		// so skip entirely rather than invent partial semantics.
		return
	case *ast.RangeStmt:
		Shallow(s.Key, visit)
		Shallow(s.Value, visit)
		Shallow(s.X, visit)
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		switch x.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.FuncLit:
			visit(x)
			return false
		}
		return visit(x)
	})
}
