// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis core: just enough surface (Analyzer, Pass,
// diagnostics, directive-based suppression, serialized object facts) to write
// Skalla's invariant checkers against, without pulling an external module
// into the build. The API deliberately mirrors x/tools so the analyzers read
// familiarly and could be ported onto the real framework if a vendored copy
// ever becomes available.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //skallavet:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// FactTypes lists prototypes of the facts the analyzer exports. A
	// non-empty list makes the driver run the analyzer on dependency
	// packages too (facts-only, diagnostics discarded), so importers can
	// see across the package boundary.
	FactTypes []Fact
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info is the type information for Files.
	Info *types.Info
	// Dir is the directory containing the package's source files; analyzers
	// that read side files (e.g. the wirecompat golden schema or the
	// lockorder hierarchy) resolve them against it.
	Dir string

	report      func(Diagnostic)
	exported    map[string]json.RawMessage
	importFacts map[string]PackageFacts
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file enclosing pos is a _test.go file.
// Invariants about library code do not apply to tests, which routinely use
// context.Background, std-log output, and string-keyed fixtures.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Finding is a diagnostic resolved to a concrete position, tagged with the
// analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Package bundles a loaded, type-checked package for the runner.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Dir   string
}

// Config controls one runner invocation beyond the package itself.
type Config struct {
	// ImportFacts maps dependency package paths to their exported facts
	// (decoded from their vetx files).
	ImportFacts map[string]PackageFacts
	// FactsOnly suppresses diagnostics: the run exists to compute this
	// package's facts for its importers (the driver's VetxOnly passes).
	FactsOnly bool
	// AuditAllows reports stale //skallavet:allow directives — directives
	// none of whose named rules produced a diagnostic on their line — as
	// findings, in addition to the surviving diagnostics.
	AuditAllows bool
	// ExtraFiles are package-directory Go files excluded from this build
	// (build-tag-excluded files, and _test.go files in a non-test variant).
	// Their directives cannot suppress anything — the analyzers never see
	// those lines — but the audit scans them so a suppression rotting in an
	// excluded file is flagged instead of silently waiting to mask a hit
	// when the file rejoins the build.
	ExtraFiles []string
}

// Run applies analyzers to one package and returns the surviving findings,
// with //skallavet:allow suppressions already applied and results ordered by
// position, plus the package's exported facts for its vetx file.
//
// Analyzers run concurrently — they are independent given the shared
// read-only package — and their diagnostics and facts are merged
// deterministically afterwards.
func Run(pkg *Package, analyzers []*Analyzer, cfg Config) ([]Finding, PackageFacts, error) {
	allow := collectAllows(pkg.Fset, pkg.Files)

	type result struct {
		diags []Diagnostic
		facts map[string]json.RawMessage
		err   error
	}
	results := make([]result, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				Info:        pkg.Info,
				Dir:         pkg.Dir,
				importFacts: cfg.ImportFacts,
			}
			pass.report = func(d Diagnostic) { results[i].diags = append(results[i].diags, d) }
			results[i].err = a.Run(pass)
			results[i].facts = pass.exported
		}(i, a)
	}
	wg.Wait()

	var out []Finding
	var facts PackageFacts
	for i, a := range analyzers {
		if err := results[i].err; err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		facts = mergeFacts(facts, a.Name, results[i].facts)
		if cfg.FactsOnly {
			continue
		}
		for _, d := range results[i].diags {
			posn := pkg.Fset.Position(d.Pos)
			if allow.allows(a.Name, posn) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
		}
	}
	if cfg.AuditAllows && !cfg.FactsOnly {
		out = append(out, auditAllows(allow, analyzers)...)
		out = append(out, auditExcludedFiles(cfg.ExtraFiles)...)
	}
	sortFindings(out)
	return out, facts, nil
}

func sortFindings(fs []Finding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && lessFinding(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func lessFinding(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	return a.Pos.Column < b.Pos.Column
}
