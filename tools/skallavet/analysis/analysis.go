// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis core: just enough surface (Analyzer, Pass,
// diagnostics, directive-based suppression) to write Skalla's invariant
// checkers against, without pulling an external module into the build. The
// API deliberately mirrors x/tools so the analyzers read familiarly and
// could be ported onto the real framework if a vendored copy ever becomes
// available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //skallavet:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info is the type information for Files.
	Info *types.Info
	// Dir is the directory containing the package's source files; analyzers
	// that read side files (e.g. the wirecompat golden schema) resolve them
	// against it.
	Dir string

	report func(Diagnostic)
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file enclosing pos is a _test.go file.
// Invariants about library code do not apply to tests, which routinely use
// context.Background, std-log output, and string-keyed fixtures.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Finding is a diagnostic resolved to a concrete position, tagged with the
// analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Package bundles a loaded, type-checked package for the runner.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Dir   string
}

// Run applies analyzers to one package and returns the surviving findings,
// with //skallavet:allow suppressions already applied and results ordered by
// position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	allow := collectAllows(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Dir:      pkg.Dir,
		}
		var diags []Diagnostic
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range diags {
			posn := pkg.Fset.Position(d.Pos)
			if allow.allows(a.Name, posn) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
		}
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && lessFinding(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func lessFinding(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	return a.Pos.Column < b.Pos.Column
}
