package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// Fact is a serializable unit of cross-package knowledge an analyzer attaches
// to a package-level object (today: functions and methods). Facts computed
// while analyzing a package are exported alongside the package's vetx file
// and become visible — via Pass.ImportObjectFact — to the same analyzer when
// it later analyzes an importing package. The mechanism mirrors
// golang.org/x/tools/go/analysis facts, with JSON in place of gob: the
// payload rides inside the vet result cache, so it must be deterministic.
//
// Implementations must be JSON-marshalable pointers.
type Fact interface {
	// AFact marks the type as a fact; it is never called.
	AFact()
}

// PackageFacts is the serialized fact set of one package:
// analyzer name -> object path -> fact payload. Object paths are
// "Func" for package-level functions and "Recv.Method" for methods
// (pointerness of the receiver is normalized away).
type PackageFacts map[string]map[string]json.RawMessage

// factFile is the on-disk shape of a vetx facts payload.
type factFile struct {
	Version int          `json:"version"`
	Facts   PackageFacts `json:"facts,omitempty"`
}

// factFileVersion guards the vetx payload shape; bump on incompatible change
// (the driver also bumps its -V version, which busts the vet result cache).
const factFileVersion = 2

// EncodeFacts serializes a package's facts for its vetx file. Deterministic:
// map iteration is sorted by the JSON encoder for the nested maps.
func EncodeFacts(facts PackageFacts) ([]byte, error) {
	return json.Marshal(&factFile{Version: factFileVersion, Facts: facts})
}

// DecodeFacts parses a vetx facts payload. Empty input (the pre-facts vetx
// format, or a dependency analyzed with no fact-producing analyzers) decodes
// to nil facts.
func DecodeFacts(data []byte) (PackageFacts, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var f factFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("facts payload: %w", err)
	}
	if f.Version != factFileVersion {
		// A vetx written by a different tool generation: ignore rather than
		// fail — the vet cache key (driver version) makes this unreachable in
		// practice, but a stale build cache should degrade, not crash.
		return nil, nil
	}
	return f.Facts, nil
}

// ObjectPath returns the stable intra-package path facts are keyed by, or ""
// for objects facts cannot attach to (locals, imported names).
func ObjectPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		// Facts attach to functions only for now; extend here if an analyzer
		// ever needs facts on types or vars.
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Name()
		}
		return ""
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return fn.Name()
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name() + "." + fn.Name()
}

// ExportObjectFact records a fact about obj, which must belong to the package
// under analysis. The fact is visible to ImportObjectFact in importing
// packages once this package's vetx is written.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != p.Pkg.Path() {
		return
	}
	path := ObjectPath(obj)
	if path == "" {
		return
	}
	data, err := json.Marshal(fact)
	if err != nil {
		return
	}
	if p.exported == nil {
		p.exported = map[string]json.RawMessage{}
	}
	p.exported[path] = data
}

// ImportObjectFact loads the fact this analyzer recorded about obj into fact
// (a pointer), reporting whether one exists. Objects of the package under
// analysis resolve against facts exported earlier in this run; imported
// objects resolve against their package's vetx facts.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := ObjectPath(obj)
	if path == "" {
		return false
	}
	var data json.RawMessage
	if obj.Pkg().Path() == p.Pkg.Path() {
		data = p.exported[path]
	} else if pf := p.importFacts[obj.Pkg().Path()]; pf != nil {
		data = pf[p.Analyzer.Name][path]
	}
	if data == nil {
		return false
	}
	return json.Unmarshal(data, fact) == nil
}

// mergeFacts folds one analyzer's exported facts into the package fact set,
// inserting keys in sorted order so the vetx payload is deterministic.
func mergeFacts(dst PackageFacts, analyzer string, facts map[string]json.RawMessage) PackageFacts {
	if len(facts) == 0 {
		return dst
	}
	if dst == nil {
		dst = PackageFacts{}
	}
	m := dst[analyzer]
	if m == nil {
		m = map[string]json.RawMessage{}
		dst[analyzer] = m
	}
	keys := make([]string, 0, len(facts))
	for k := range facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m[k] = facts[k]
	}
	return dst
}
